(* TCP serving front-end: acceptor + per-connection reader/workers/writer
   multiplexing pipelined binary frames onto the shard mailboxes, plus an
   optional memcached-text listener.  See server.mli and DESIGN.md §13. *)

module Sh = Hyperion_shard
module E = Hyperion.Hyperion_error

type config = {
  host : string;
  port : int;
  memcached_port : int option;
  workers_per_conn : int;
  max_connections : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7791;
    memcached_port = None;
    workers_per_conn = 4;
    max_connections = 1024;
  }

(* ---- telemetry ------------------------------------------------------- *)

let g_conns =
  Telemetry.Gauge.make "hyperion_net_connections"
    ~help:"Open client connections (binary + memcached listeners)"

let g_inflight =
  Telemetry.Gauge.make "hyperion_net_inflight"
    ~help:"Requests queued to or executing on connection op workers"

let c_proto_errors =
  Telemetry.Counter.make "hyperion_net_protocol_errors_total"
    ~help:"Malformed frames, unknown opcodes and framing corruption"

let op_names =
  [| "put"; "add"; "get"; "mem"; "delete"; "batch"; "stats"; "health" |]

let c_requests =
  Array.map
    (fun op ->
      Telemetry.Counter.make "hyperion_net_requests_total"
        ~help:"Requests received per opcode" ~labels:[ ("op", op) ])
    op_names

let h_latency =
  Array.map
    (fun op ->
      Telemetry.Histogram.make "hyperion_net_server_latency_ns"
        ~help:"Server-side latency from frame decode to response enqueue"
        ~labels:[ ("op", op) ])
    op_names

(* opcode (1-based on the wire) -> metric index *)
let metric_ix req = Frame.opcode req - 1

let inflight = Atomic.make 0

let inflight_add d =
  let v = Atomic.fetch_and_add inflight d + d in
  if Telemetry.enabled () then Telemetry.Gauge.set g_inflight v

(* ---- blocking queue -------------------------------------------------- *)

module Bq = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    q : 'a Queue.t;
    mutable closed : bool; [@guarded_by m]
  }

  let create () =
    { m = Mutex.create (); c = Condition.create (); q = Queue.create ();
      closed = false }

  let push t v =
    Mutex.lock t.m;
    let accepted = not t.closed in
    if accepted then begin
      Queue.push v t.q;
      Condition.signal t.c
    end;
    Mutex.unlock t.m;
    accepted

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  (* Blocks until an element is available or the queue is closed and
     drained; [None] means no element will ever come. *)
  let pop t =
    Mutex.lock t.m;
    let rec wait () =
      match Queue.take_opt t.q with
      | Some v ->
          Mutex.unlock t.m;
          Some v
      | None ->
          if t.closed then begin
            Mutex.unlock t.m;
            None
          end
          else begin
            Condition.wait t.c t.m;
            wait ()
          end
    in
    wait ()
end

(* ---- sockets --------------------------------------------------------- *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let quiet_close fd =
  match Unix.close fd with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) -> ignore err

let quiet_shutdown fd =
  match Unix.shutdown fd Unix.SHUTDOWN_ALL with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) -> ignore err

(* ---- request execution ----------------------------------------------- *)

let of_result = function
  | Ok () -> Frame.Ack
  | Error e -> Frame.Err (Frame.err_of_hyperion e, E.to_string e)

let bad_key k =
  if k = "" then Some (Frame.Err (Frame.E_empty_key, "empty key"))
  else if String.length k > Frame.max_key_len then
    Some
      (Frame.Err
         ( Frame.E_key_too_long,
           Printf.sprintf "key length %d exceeds %d" (String.length k)
             Frame.max_key_len ))
  else None

let exec store (req : Frame.request) : Frame.response =
  match req with
  | Put (k, v) -> (
      match bad_key k with
      | Some e -> e
      | None -> of_result (Sh.put_result store k v))
  | Add k -> (
      match bad_key k with
      | Some e -> e
      | None -> of_result (Sh.add_result store k))
  | Delete k -> (
      match bad_key k with
      | Some e -> e
      | None -> (
          match Sh.delete_result store k with
          | Ok existed -> Frame.Found existed
          | Error e -> Frame.Err (Frame.err_of_hyperion e, E.to_string e)))
  | Get k -> (
      match bad_key k with
      | Some e -> e
      | None -> Frame.Value (Sh.get store k))
  | Mem k -> (
      match bad_key k with
      | Some e -> e
      | None -> Frame.Found (Sh.mem store k))
  | Batch ops -> (
      let bad =
        Array.fold_left
          (fun acc op ->
            match acc with
            | Some _ -> acc
            | None -> (
                match op with
                | Frame.Bput (k, _) | Frame.Badd k | Frame.Bdel k -> bad_key k))
          None ops
      in
      match bad with
      | Some e -> e
      | None ->
          let b = Sh.Batch.create store in
          Array.iter
            (fun op ->
              match op with
              | Frame.Bput (k, v) -> Sh.Batch.put b k v
              | Frame.Badd k -> Sh.Batch.add b k
              | Frame.Bdel k -> Sh.Batch.delete b k)
            ops;
          (match Sh.Batch.flush b with
          | Ok n -> Frame.Applied n
          | Error e -> Frame.Err (Frame.err_of_hyperion e, E.to_string e)))
  | Stats ->
      let keys, bytes, saturated =
        Sh.with_quiesced store (fun stores ->
            Array.fold_left
              (fun (k, b, s) st ->
                ( k + Hyperion.Store.length st,
                  b + Hyperion.Store.memory_usage st,
                  s + Hyperion.Store.saturated_arenas st ))
              (0, 0, 0) stores)
      in
      Frame.Stats_r
        {
          st_keys = Int64.of_int keys;
          st_resident_bytes = Int64.of_int bytes;
          st_shards = Sh.shards store;
          st_saturated_arenas = saturated;
        }
  | Health ->
      Frame.Health_r
        (Array.of_list
           (List.map
              (fun h ->
                {
                  Frame.sh_shard = h.Sh.hs_shard;
                  sh_alive = h.Sh.hs_alive;
                  sh_degraded = h.Sh.hs_degraded <> None;
                  sh_backlog = h.Sh.hs_backlog;
                })
              (Sh.health store)))

let exec_safe store req =
  match exec store req with
  | resp -> resp
  | exception E.Error e ->
      Frame.Err (Frame.err_of_hyperion e, E.to_string e)
  | exception Invalid_argument msg -> Frame.Err (Frame.E_bad_request, msg)
  | exception exn -> Frame.Err (Frame.E_internal, Printexc.to_string exn)

(* ---- connections ----------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  work : (int * int * Frame.request) Bq.t;  (* id, t0_ns, request *)
  out : string Bq.t;  (* encoded response frames *)
  wm : Mutex.t;
  mutable live_workers : int; [@guarded_by wm]
}

type t = {
  store : Sh.t;
  cfg : config;
  bin_sock : Unix.file_descr;
  bin_port : int;
  mc_sock : Unix.file_descr option;
  mc_port : int option;
  sm : Mutex.t;
  conns : (int, conn * Thread.t list) Hashtbl.t;
  mutable next_conn : int; [@guarded_by sm]
  mutable stopping : bool; [@guarded_by sm]
  mutable acceptors : Thread.t list;
      (* written once by [start] before any reader exists; joined by [stop] *)
}

let set_conn_gauge t =
  if Telemetry.enabled () then
    Telemetry.Gauge.set g_conns (Hashtbl.length t.conns)

let respond conn ~id resp =
  let b = Buffer.create 64 in
  Frame.encode_response b ~id resp;
  ignore (Bq.push conn.out (Buffer.contents b))

let observe_latency req t0 =
  if Telemetry.enabled () && t0 >= 0 then
    Telemetry.Histogram.observe_ns
      h_latency.(metric_ix req)
      (Telemetry.now_ns () - t0)

let count_request req =
  if Telemetry.enabled () then Telemetry.Counter.incr c_requests.(metric_ix req)

let count_proto_error () =
  if Telemetry.enabled () then Telemetry.Counter.incr c_proto_errors

(* Op worker: drain the connection's work queue through the store. *)
let worker_loop t conn =
  let rec loop () =
    match Bq.pop conn.work with
    | None -> ()
    | Some (id, t0, req) ->
        let resp = exec_safe t.store req in
        observe_latency req t0;
        respond conn ~id resp;
        inflight_add (-1);
        loop ()
  in
  loop ();
  (* the last worker out seals the response queue so the writer can
     finish its drain and close the socket *)
  Mutex.lock conn.wm;
  conn.live_workers <- conn.live_workers - 1;
  let last = conn.live_workers = 0 in
  Mutex.unlock conn.wm;
  if last then Bq.close conn.out

let writer_loop conn =
  let rec loop () =
    match Bq.pop conn.out with
    | None -> ()
    | Some frame ->
        (* SAFETY: Bytes.unsafe_of_string aliases an immutable string that
           write(2) only reads; the bytes are never mutated. *)
        (match write_all conn.fd (Bytes.unsafe_of_string frame) 0
                 (String.length frame)
         with
        | () -> ()
        | exception Unix.Unix_error (err, _, _) ->
            (* peer gone: discard the rest of the queue but keep popping so
               workers never block on a full ... (queue is unbounded; this
               just drains promptly) *)
            ignore err);
        loop ()
  in
  loop ();
  quiet_close conn.fd

(* Cap on reads drained into one batched descent: bounds the latency of
   the first response in a burst and the scratch arrays below. *)
let max_read_burst = 256

let reader_loop t conn =
  let buf = Bytes.create 65536 in
  let dec = Frame.Decoder.create () in
  let stop = ref false in
  (* Consecutive pipelined Get/Mem frames accumulate here (newest first)
     and flush through one batched store descent at batch boundaries: a
     mutation frame, the decode buffer running dry, burst cap, corruption
     or EOF. *)
  let pending = ref [] in
  let npending = ref 0 in
  let flush_reads () =
    if !npending > 0 then begin
      let frames = Array.of_list (List.rev !pending) in
      pending := [];
      npending := 0;
      let nf = Array.length frames in
      let resps = Array.make nf (Frame.Err (Frame.E_internal, "unset")) in
      (* Per-frame key validation stays per-frame (a bad key must not
         poison its neighbours); valid reads group by opcode. *)
      let gets = ref [] and mems = ref [] in
      Array.iteri
        (fun i (_, _, req) ->
          match req with
          | Frame.Get k -> (
              match bad_key k with
              | Some e -> resps.(i) <- e
              | None -> gets := (i, k) :: !gets)
          | Frame.Mem k -> (
              match bad_key k with
              | Some e -> resps.(i) <- e
              | None -> mems := (i, k) :: !mems)
          | _ -> resps.(i) <- Frame.Err (Frame.E_internal, "non-read batched"))
        frames;
      let scatter group run =
        match List.rev group with
        | [] -> ()
        | l -> (
            let idx = Array.of_list (List.map fst l) in
            let keys = Array.of_list (List.map snd l) in
            match run keys with
            | rs -> Array.iteri (fun j r -> resps.(idx.(j)) <- r) rs
            | exception (E.Error _ | Invalid_argument _) ->
                (* one failing batch must not fail the whole burst: re-run
                   the slice per frame so each response carries its own
                   typed error *)
                Array.iter
                  (fun i ->
                    let _, _, req = frames.(i) in
                    resps.(i) <- exec_safe t.store req)
                  idx
            | exception exn ->
                let msg = Printexc.to_string exn in
                Array.iter
                  (fun i -> resps.(i) <- Frame.Err (Frame.E_internal, msg))
                  idx)
      in
      scatter !gets (fun keys ->
          Array.map (fun v -> Frame.Value v) (Sh.get_many t.store keys));
      scatter !mems (fun keys ->
          Array.map (fun b -> Frame.Found b) (Sh.mem_many t.store keys));
      Array.iteri
        (fun i (id, t0, req) ->
          observe_latency req t0;
          respond conn ~id resps.(i))
        frames
    end
  in
  let handle_frame id tag payload =
    match Frame.parse_request ~tag payload with
    | Error msg ->
        count_proto_error ();
        flush_reads ();
        respond conn ~id (Frame.Err (Frame.E_bad_request, msg))
    | Ok req -> (
        count_request req;
        let t0 = if Telemetry.enabled () then Telemetry.now_ns () else -1 in
        match req with
        | Frame.Get _ | Frame.Mem _ ->
            (* lock-free reads never touch a mailbox: serve them on the
               reader so they overtake queued mutations (pipelining);
               consecutive reads batch into one pipelined descent *)
            pending := (id, t0, req) :: !pending;
            incr npending;
            if !npending >= max_read_burst then flush_reads ()
        | _ ->
            flush_reads ();
            inflight_add 1;
            if not (Bq.push conn.work (id, t0, req)) then inflight_add (-1))
  in
  let drain_frames () =
    let continue = ref true in
    while !continue do
      match Frame.Decoder.next dec with
      | Frame.Frame (id, tag, payload) -> handle_frame id tag payload
      | Frame.Need_more ->
          flush_reads ();
          continue := false
      | Frame.Corrupt msg ->
          count_proto_error ();
          flush_reads ();
          respond conn ~id:0 (Frame.Err (Frame.E_too_large, msg));
          stop := true;
          continue := false
    done
  in
  while not !stop do
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> stop := true
    | n ->
        Frame.Decoder.feed dec buf 0 n;
        drain_frames ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
        ignore err;
        stop := true
  done;
  flush_reads ();
  Bq.close conn.work

let finish_conn t cid =
  Mutex.lock t.sm;
  Hashtbl.remove t.conns cid;
  set_conn_gauge t;
  Mutex.unlock t.sm

(* ---- memcached-text listener ----------------------------------------- *)

(* Line-oriented reader with an explicit byte accumulator: memcached
   frames are CRLF lines except the [set] data block, which is an exact
   byte count. *)
module Mc = struct
  type r = {
    fd : Unix.file_descr;
    mutable buf : Bytes.t;
    mutable len : int;
    chunk : Bytes.t;
  }

  let make fd = { fd; buf = Bytes.create 4096; len = 0; chunk = Bytes.create 4096 }

  let refill r =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> false
    | n ->
        if r.len + n > Bytes.length r.buf then begin
          let nb = Bytes.create (max (r.len + n) (2 * Bytes.length r.buf)) in
          Bytes.blit r.buf 0 nb 0 r.len;
          r.buf <- nb
        end;
        Bytes.blit r.chunk 0 r.buf r.len n;
        r.len <- r.len + n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    | exception Unix.Unix_error (err, _, _) ->
        ignore err;
        false

  let consume r n =
    Bytes.blit r.buf n r.buf 0 (r.len - n);
    r.len <- r.len - n

  (* One text line without its terminator; tolerates bare LF. *)
  let rec read_line r =
    let nl = Bytes.index_opt (Bytes.sub r.buf 0 r.len) '\n' in
    match nl with
    | Some i ->
        let stop = if i > 0 && Bytes.get r.buf (i - 1) = '\r' then i - 1 else i in
        let line = Bytes.sub_string r.buf 0 stop in
        consume r (i + 1);
        Some line
    | None -> if refill r then read_line r else None

  (* Exactly [n] data bytes followed by (CR)LF. *)
  let rec read_data r n =
    if r.len >= n + 1 then begin
      let data = Bytes.sub_string r.buf 0 n in
      let skip =
        if Bytes.get r.buf n = '\r' && r.len >= n + 2
           && Bytes.get r.buf (n + 1) = '\n'
        then n + 2
        else if Bytes.get r.buf n = '\n' then n + 1
        else n
      in
      consume r skip;
      Some data
    end
    else if refill r then read_data r n
    else None
end

let mc_send fd s =
  (* SAFETY: Bytes.unsafe_of_string aliases an immutable string that
     write(2) only reads; the bytes are never mutated. *)
  match write_all fd (Bytes.unsafe_of_string s) 0 (String.length s) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) -> ignore err

let mc_error_reply e =
  Printf.sprintf "SERVER_ERROR %s\r\n" (E.to_string e)

let mc_loop t fd =
  let r = Mc.make fd in
  let reply = Buffer.create 256 in
  let running = ref true in
  while !running do
    Buffer.clear reply;
    match Mc.read_line r with
    | None -> running := false
    | Some line -> (
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> ()
        | "get" :: keys when keys <> [] ->
            List.iter
              (fun k ->
                if k <> "" && String.length k <= Frame.max_key_len then
                  match Sh.get t.store k with
                  | Some v ->
                      let data = Int64.to_string v in
                      Buffer.add_string reply
                        (Printf.sprintf "VALUE %s 0 %d\r\n%s\r\n" k
                           (String.length data) data)
                  | None ->
                      if Sh.mem t.store k then
                        Buffer.add_string reply
                          (Printf.sprintf "VALUE %s 0 0\r\n\r\n" k))
              keys;
            Buffer.add_string reply "END\r\n";
            mc_send fd (Buffer.contents reply)
        | "set" :: k :: _flags :: _exptime :: nbytes :: rest -> (
            let noreply = rest = [ "noreply" ] in
            let say s = if not noreply then mc_send fd s in
            match int_of_string_opt nbytes with
            | None -> say "CLIENT_ERROR bad data chunk\r\n"
            | Some n when n < 0 || n > Frame.max_frame_len ->
                say "CLIENT_ERROR bad data chunk\r\n"
            | Some n -> (
                match Mc.read_data r n with
                | None -> running := false
                | Some data ->
                    if k = "" || String.length k > Frame.max_key_len then
                      say "CLIENT_ERROR bad key\r\n"
                    else if data = "" then (
                      match Sh.add_result t.store k with
                      | Ok () -> say "STORED\r\n"
                      | Error e -> say (mc_error_reply e))
                    else (
                      match Int64.of_string_opt (String.trim data) with
                      | None ->
                          say
                            "CLIENT_ERROR value must be a decimal 64-bit \
                             integer\r\n"
                      | Some v -> (
                          match Sh.put_result t.store k v with
                          | Ok () -> say "STORED\r\n"
                          | Error e -> say (mc_error_reply e)))))
        | "delete" :: k :: rest when rest = [] || rest = [ "noreply" ] -> (
            let say s = if rest = [] then mc_send fd s in
            if k = "" || String.length k > Frame.max_key_len then
              say "NOT_FOUND\r\n"
            else
              match Sh.delete_result t.store k with
              | Ok true -> say "DELETED\r\n"
              | Ok false -> say "NOT_FOUND\r\n"
              | Error e -> say (mc_error_reply e))
        | [ "stats" ] ->
            let keys, bytes =
              Sh.with_quiesced t.store (fun stores ->
                  Array.fold_left
                    (fun (k, b) st ->
                      ( k + Hyperion.Store.length st,
                        b + Hyperion.Store.memory_usage st ))
                    (0, 0) stores)
            in
            Buffer.add_string reply
              (Printf.sprintf "STAT curr_items %d\r\n" keys);
            Buffer.add_string reply (Printf.sprintf "STAT bytes %d\r\n" bytes);
            Buffer.add_string reply
              (Printf.sprintf "STAT threads %d\r\n" (Sh.shards t.store));
            Buffer.add_string reply
              (Printf.sprintf "STAT curr_connections %d\r\n"
                 (Mutex.lock t.sm;
                  let n = Hashtbl.length t.conns in
                  Mutex.unlock t.sm;
                  n));
            Buffer.add_string reply "END\r\n";
            mc_send fd (Buffer.contents reply)
        | [ "version" ] -> mc_send fd "VERSION hyperion-net 1.0\r\n"
        | [ "quit" ] -> running := false
        | _ -> mc_send fd "ERROR\r\n")
  done;
  quiet_close fd

(* ---- accept / lifecycle ---------------------------------------------- *)

let spawn_binary_conn t fd =
  Mutex.lock t.sm;
  if t.stopping || Hashtbl.length t.conns >= t.cfg.max_connections then begin
    Mutex.unlock t.sm;
    quiet_close fd
  end
  else begin
    let cid = t.next_conn in
    t.next_conn <- cid + 1;
    let nworkers = max 1 t.cfg.workers_per_conn in
    let conn =
      {
        fd;
        work = Bq.create ();
        out = Bq.create ();
        wm = Mutex.create ();
        live_workers = nworkers;
      }
    in
    let workers =
      List.init nworkers (fun _ ->
          Thread.create (fun () -> worker_loop t conn) ())
    in
    let writer = Thread.create (fun () -> writer_loop conn) () in
    let reader =
      Thread.create
        (fun () ->
          reader_loop t conn;
          (* reader closed the work queue; workers drain then seal [out];
             writer flushes and closes the fd.  Join them so the conn's
             registry entry outlives all its threads. *)
          List.iter Thread.join workers;
          Thread.join writer;
          finish_conn t cid)
        ()
    in
    Hashtbl.replace t.conns cid (conn, reader :: writer :: workers);
    set_conn_gauge t;
    Mutex.unlock t.sm
  end

let spawn_mc_conn t fd =
  Mutex.lock t.sm;
  if t.stopping || Hashtbl.length t.conns >= t.cfg.max_connections then begin
    Mutex.unlock t.sm;
    quiet_close fd
  end
  else begin
    let cid = t.next_conn in
    t.next_conn <- cid + 1;
    let conn =
      { fd; work = Bq.create (); out = Bq.create (); wm = Mutex.create ();
        live_workers = 0 }
    in
    let th =
      Thread.create
        (fun () ->
          mc_loop t fd;
          finish_conn t cid)
        ()
    in
    Hashtbl.replace t.conns cid (conn, [ th ]);
    set_conn_gauge t;
    Mutex.unlock t.sm
  end

let acceptor_loop t sock spawn =
  let running = ref true in
  while !running do
    match Unix.accept ~cloexec:true sock with
    | fd, _ -> spawn t fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
        (* the listener was closed by [stop] (EBADF/EINVAL) or is beyond
           recovery; either way the accept loop is done *)
        ignore err;
        running := false
  done

let listen_on ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 128;
    Unix.getsockname sock
  with
  | Unix.ADDR_INET (_, bound) -> Ok (sock, bound)
  | Unix.ADDR_UNIX _ ->
      quiet_close sock;
      Error "unexpected unix-domain listener"
  | exception Unix.Unix_error (err, fn, _) ->
      quiet_close sock;
      Error
        (Printf.sprintf "cannot listen on %s:%d: %s (%s)" host port
           (Unix.error_message err) fn)

let start ?(config = default_config) store =
  if config.workers_per_conn < 1 || config.workers_per_conn > 64 then
    Error "workers_per_conn must be in [1, 64]"
  else if config.max_connections < 1 then Error "max_connections must be >= 1"
  else begin
    (* a peer that disappears mid-write must surface as EPIPE, not kill
       the process *)
    (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | _old -> ()
    | exception Invalid_argument msg -> ignore msg);
    match listen_on ~host:config.host ~port:config.port with
    | Error _ as e -> e
    | Ok (bin_sock, bin_port) -> (
        let mc =
          match config.memcached_port with
          | None -> Ok None
          | Some p -> (
              match listen_on ~host:config.host ~port:p with
              | Ok (s, bound) -> Ok (Some (s, bound))
              | Error _ as e ->
                  quiet_close bin_sock;
                  (match e with Error m -> Error m | Ok _ -> Error "unreachable"))
        in
        match mc with
        | Error m -> Error m
        | Ok mc ->
            let t =
              {
                store;
                cfg = config;
                bin_sock;
                bin_port;
                mc_sock = Option.map fst mc;
                mc_port = Option.map snd mc;
                sm = Mutex.create ();
                conns = Hashtbl.create 64;
                next_conn = 0;
                stopping = false;
                acceptors = [];
              }
            in
            let acc =
              Thread.create
                (fun () -> acceptor_loop t bin_sock spawn_binary_conn)
                ()
            in
            let accs =
              match t.mc_sock with
              | None -> [ acc ]
              | Some s ->
                  let a =
                    Thread.create (fun () -> acceptor_loop t s spawn_mc_conn) ()
                  in
                  [ acc; a ]
            in
            t.acceptors <- accs;
            Ok t)
  end

let port t = t.bin_port
let memcached_port t = t.mc_port

let connections t =
  Mutex.lock t.sm;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.sm;
  n

let stop t =
  Mutex.lock t.sm;
  let already = t.stopping in
  t.stopping <- true;
  let conn_threads =
    Hashtbl.fold (fun _ (conn, ths) acc -> (conn, ths) :: acc) t.conns []
  in
  Mutex.unlock t.sm;
  if not already then begin
    (* shutdown() first: on Linux, close() alone does not wake a thread
       blocked in accept(2), shutdown does (the accept fails) *)
    quiet_shutdown t.bin_sock;
    quiet_close t.bin_sock;
    (match t.mc_sock with
    | Some s ->
        quiet_shutdown s;
        quiet_close s
    | None -> ());
    List.iter Thread.join t.acceptors;
    (* shut connections down: readers see EOF, pipelines drain, writers
       flush and close *)
    List.iter (fun (conn, _) -> quiet_shutdown conn.fd) conn_threads;
    List.iter (fun (_, ths) -> List.iter Thread.join ths) conn_threads;
    if Telemetry.enabled () then Telemetry.Gauge.set g_conns 0
  end
