module Ks = Workload.Keystream
module Mt = Workload.Mt19937_64

type protocol = Binary | Memcached
type arrival = Poisson | Uniform

type config = {
  host : string;
  port : int;
  protocol : protocol;
  connections : int;
  depth : int;
  target_qps : float;
  duration_s : float;
  arrival : arrival;
  read_fraction : float;
  n_keys : int;
  seed : int64;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7791;
    protocol = Binary;
    connections = 4;
    depth = 16;
    target_qps = 20_000.0;
    duration_s = 2.0;
    arrival = Poisson;
    read_fraction = 0.9;
    n_keys = 10_000;
    seed = 20190301L;
  }

type summary = {
  s_protocol : protocol;
  s_target_qps : float;
  s_achieved_qps : float;
  s_sent : int;
  s_completed : int;
  s_errors : int;
  s_elapsed_s : float;
  s_hist : Telemetry.Hist.t;
}

(* what one connection thread hands back *)
type conn_out = {
  co_hist : Telemetry.Hist.t;
  co_sent : int;
  co_completed : int;
  co_errors : int;
  co_elapsed_s : float;  (* first schedule tick to last drained response *)
}

let validate cfg =
  if cfg.connections < 1 then Some "connections must be >= 1"
  else if cfg.depth < 1 then Some "depth must be >= 1"
  else if not (cfg.target_qps > 0.0) then Some "target_qps must be > 0"
  else if not (cfg.duration_s > 0.0) then Some "duration_s must be > 0"
  else if cfg.read_fraction < 0.0 || cfg.read_fraction > 1.0 then
    Some "read_fraction must be in [0, 1]"
  else if cfg.n_keys < 1 then Some "n_keys must be >= 1"
  else None

(* Distinct, deterministic per-connection generator streams. *)
let conn_rng cfg ix = Mt.create (Int64.add cfg.seed (Int64.of_int (7919 * (ix + 1))))

(* Exponential (Poisson process) or fixed inter-arrival gap, in ns. *)
let next_gap cfg rng interval_ns =
  match cfg.arrival with
  | Uniform -> interval_ns
  | Poisson ->
      let u = Mt.next_float rng in
      -.interval_ns *. log (1.0 -. u)

(* Pace to the scheduled send time while opportunistically consuming
   responses the moment they arrive ([poll]/[drain] supplied by the
   protocol runner).  Two latency traps live here:

   - observing responses only when the pipeline window fills would delay
     every measurement by up to [depth * gap] — so the wait multiplexes
     on the socket and drains eagerly;
   - a bare [Unix.sleepf] overshoots by scheduler granularity (tens of
     µs), which at millisecond gaps silently caps the send rate below
     target — so the last stretch before the deadline yield-spins. *)
let pace_until ~poll ~drain ~outstanding ~dead sched_ns =
  let spin_ns = 300_000 in
  let rec loop () =
    if not !dead then begin
      let now = Telemetry.now_ns () in
      if now < sched_ns then begin
        let gap = sched_ns - now in
        let wait_s =
          if gap > spin_ns then float_of_int (gap - 200_000) /. 1e9 else 0.0
        in
        if outstanding () > 0 && poll wait_s then drain ()
        else if gap > spin_ns then Unix.sleepf wait_s
        else Thread.yield ();
        loop ()
      end
    end
  in
  loop ()

(* ---- binary-protocol connection -------------------------------------- *)

let run_binary_conn cfg ks ix =
  match Client.connect ~host:cfg.host ~port:cfg.port () with
  | Error _ as e -> e
  | Ok cl ->
      let rng = conn_rng cfg ix in
      let hist = Telemetry.Hist.create () in
      let sched_of = Hashtbl.create (2 * cfg.depth) in
      let sent = ref 0 and completed = ref 0 and errors = ref 0 in
      let interval_ns = 1e9 *. float_of_int cfg.connections /. cfg.target_qps in
      let dead = ref false in
      let recv_one () =
        match Client.recv cl with
        | Error _ ->
            incr errors;
            dead := true
        | Ok (id, resp) -> (
            match Hashtbl.find_opt sched_of id with
            | None -> incr errors
            | Some s ->
                Hashtbl.remove sched_of id;
                incr completed;
                (* coordinated-omission-safe: measured from the SCHEDULED
                   send time, so server-induced pipeline stalls are charged
                   to the server *)
                Telemetry.Hist.observe hist (Telemetry.now_ns () - s);
                (match resp with
                | Frame.Err _ -> incr errors
                | Frame.Ack | Frame.Value _ | Frame.Found _ | Frame.Applied _
                | Frame.Stats_r _ | Frame.Health_r _ ->
                    ()))
      in
      let t0 = Telemetry.now_ns () in
      let t_end = t0 + int_of_float (cfg.duration_s *. 1e9) in
      let sched = ref (float_of_int t0) in
      let next_id = ref 1 in
      while (not !dead) && Telemetry.now_ns () < t_end do
        sched := !sched +. next_gap cfg rng interval_ns;
        while (not !dead) && Hashtbl.length sched_of >= cfg.depth do
          recv_one ()
        done;
        if not !dead then begin
          let s_ns = int_of_float !sched in
          pace_until
            ~poll:(fun w -> Client.poll cl w)
            ~drain:recv_one
            ~outstanding:(fun () -> Hashtbl.length sched_of)
            ~dead s_ns;
          let key = Ks.sample ks rng in
          let req =
            if Mt.next_float rng < cfg.read_fraction then Frame.Get key
            else Frame.Put (key, Int64.of_int (Mt.next_below rng 1_000_000))
          in
          let id = !next_id in
          next_id := id + 1;
          Hashtbl.replace sched_of id s_ns;
          match Client.send cl ~id req with
          | Ok () -> incr sent
          | Error _ ->
              Hashtbl.remove sched_of id;
              incr errors;
              dead := true
        end
      done;
      while (not !dead) && Hashtbl.length sched_of > 0 do
        recv_one ()
      done;
      Client.close cl;
      Ok
        {
          co_hist = hist;
          co_sent = !sent;
          co_completed = !completed;
          co_errors = !errors;
          co_elapsed_s = float_of_int (Telemetry.now_ns () - t0) /. 1e9;
        }

(* ---- memcached-text connection --------------------------------------- *)

(* The n-gram keys contain spaces and a tab; the memcached text protocol
   is whitespace-delimited, so those bytes must not appear in a key. *)
let memcached_key k =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) k

(* Minimal in-order pipelined memcached-text client: a FIFO of scheduled
   send times paired with the expected reply shape. *)
module Mc = struct
  type t = {
    fd : Unix.file_descr;
    mutable buf : Bytes.t;
    mutable len : int;
    chunk : Bytes.t;
  }

  let connect ~host ~port =
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true
    with
    | () -> Ok { fd; buf = Bytes.create 8192; len = 0; chunk = Bytes.create 8192 }
    | exception Unix.Unix_error (err, fn, _) ->
        (match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error (e2, _, _) -> ignore e2);
        Error
          (Printf.sprintf "connect %s:%d: %s (%s)" host port
             (Unix.error_message err) fn)

    let close t =
      match Unix.close t.fd with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) -> ignore err

  let rec write_all fd b off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      write_all fd b (off + n) (len - n)
    end

  let send t s =
    (* SAFETY: Bytes.unsafe_of_string aliases an immutable string that
       write(2) only reads; the bytes are never mutated. *)
    match write_all t.fd (Bytes.unsafe_of_string s) 0 (String.length s) with
    | () -> true
    | exception Unix.Unix_error (err, _, _) ->
        ignore err;
        false

  let refill t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> false
    | n ->
        if t.len + n > Bytes.length t.buf then begin
          let nb = Bytes.create (max (t.len + n) (2 * Bytes.length t.buf)) in
          Bytes.blit t.buf 0 nb 0 t.len;
          t.buf <- nb
        end;
        Bytes.blit t.chunk 0 t.buf t.len n;
        t.len <- t.len + n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    | exception Unix.Unix_error (err, _, _) ->
        ignore err;
        false

  let consume t n =
    Bytes.blit t.buf n t.buf 0 (t.len - n);
    t.len <- t.len - n

  let rec read_line t =
    let nl = Bytes.index_opt (Bytes.sub t.buf 0 t.len) '\n' in
    match nl with
    | Some i ->
        let stop = if i > 0 && Bytes.get t.buf (i - 1) = '\r' then i - 1 else i in
        let line = Bytes.sub_string t.buf 0 stop in
        consume t (i + 1);
        Some line
    | None -> if refill t then read_line t else None

  let rec skip_data t n =
    if t.len >= n + 1 then begin
      let skip =
        if
          Bytes.get t.buf n = '\r' && t.len >= n + 2
          && Bytes.get t.buf (n + 1) = '\n'
        then n + 2
        else if Bytes.get t.buf n = '\n' then n + 1
        else n
      in
      consume t skip;
      true
    end
    else if refill t then skip_data t n
    else false

  (* One reply for a pipelined [get]: VALUE blocks until END.  Returns
     [None] on transport death, [Some ok] otherwise. *)
  let read_get_reply t =
    let rec loop () =
      match read_line t with
      | None -> None
      | Some line ->
          if line = "END" then Some true
          else if String.length line >= 6 && String.sub line 0 6 = "VALUE " then
            let words =
              String.split_on_char ' ' line
              |> List.filter (fun w -> w <> "")
            in
            match words with
            | [ _value; _key; _flags; nbytes ] -> (
                match int_of_string_opt nbytes with
                | Some n when n >= 0 -> if skip_data t n then loop () else None
                | Some _ | None -> Some false)
            | _ -> Some false
          else Some false
    in
    loop ()

  let read_set_reply t =
    match read_line t with
    | None -> None
    | Some "STORED" -> Some true
    | Some _ -> Some false

  let poll t timeout_s =
    if t.len > 0 then true
    else
      match Unix.select [ t.fd ] [] [] timeout_s with
      | [], _, _ -> false
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      | exception Unix.Unix_error (err, _, _) ->
          ignore err;
          false
end

let run_mc_conn cfg ks ix =
  match Mc.connect ~host:cfg.host ~port:cfg.port with
  | Error _ as e -> e
  | Ok mc ->
      let rng = conn_rng cfg ix in
      let hist = Telemetry.Hist.create () in
      let window : (bool * int) Queue.t = Queue.create () in
      (* (is_get, scheduled ns), reply order = send order *)
      let sent = ref 0 and completed = ref 0 and errors = ref 0 in
      let interval_ns = 1e9 *. float_of_int cfg.connections /. cfg.target_qps in
      let dead = ref false in
      let recv_one () =
        match Queue.take_opt window with
        | None -> ()
        | Some (is_get, s) -> (
            let reply =
              if is_get then Mc.read_get_reply mc else Mc.read_set_reply mc
            in
            match reply with
            | None ->
                incr errors;
                dead := true
            | Some ok ->
                incr completed;
                Telemetry.Hist.observe hist (Telemetry.now_ns () - s);
                if not ok then incr errors)
      in
      let t0 = Telemetry.now_ns () in
      let t_end = t0 + int_of_float (cfg.duration_s *. 1e9) in
      let sched = ref (float_of_int t0) in
      while (not !dead) && Telemetry.now_ns () < t_end do
        sched := !sched +. next_gap cfg rng interval_ns;
        while (not !dead) && Queue.length window >= cfg.depth do
          recv_one ()
        done;
        if not !dead then begin
          let s_ns = int_of_float !sched in
          pace_until
            ~poll:(fun w -> Mc.poll mc w)
            ~drain:recv_one
            ~outstanding:(fun () -> Queue.length window)
            ~dead s_ns;
          let key = memcached_key (Ks.sample ks rng) in
          let is_get = Mt.next_float rng < cfg.read_fraction in
          let line =
            if is_get then Printf.sprintf "get %s\r\n" key
            else
              let data = string_of_int (Mt.next_below rng 1_000_000) in
              Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" key
                (String.length data) data
          in
          Queue.push (is_get, s_ns) window;
          if Mc.send mc line then incr sent
          else begin
            ignore (Queue.take_opt window);
            incr errors;
            dead := true
          end
        end
      done;
      while (not !dead) && Queue.length window > 0 do
        recv_one ()
      done;
      Mc.close mc;
      Ok
        {
          co_hist = hist;
          co_sent = !sent;
          co_completed = !completed;
          co_errors = !errors;
          co_elapsed_s = float_of_int (Telemetry.now_ns () - t0) /. 1e9;
        }

(* ---- driver ----------------------------------------------------------- *)

let run ?keystream cfg =
  match validate cfg with
  | Some m -> Error m
  | None ->
      let ks =
        match keystream with
        | Some ks -> ks
        | None -> Ks.create ~seed:cfg.seed ~n:cfg.n_keys ()
      in
      let body =
        match cfg.protocol with
        | Binary -> run_binary_conn cfg ks
        | Memcached -> run_mc_conn cfg ks
      in
      let results = Array.make cfg.connections (Error "connection not run") in
      let threads =
        Array.init cfg.connections (fun ix ->
            Thread.create (fun () -> results.(ix) <- body ix) ())
      in
      Array.iter Thread.join threads;
      (* active serving time: the slowest connection's schedule-to-drain
         span (connect/teardown overhead would deflate achieved QPS) *)
      let elapsed_s =
        Array.fold_left
          (fun acc r ->
            match r with Ok co -> Float.max acc co.co_elapsed_s | Error _ -> acc)
          0.0 results
      in
      let failure =
        Array.fold_left
          (fun acc r ->
            match (acc, r) with
            | Some _, _ -> acc
            | None, Error m -> Some m
            | None, Ok _ -> None)
          None results
      in
      match failure with
      | Some m -> Error m
      | None ->
          let hist = Telemetry.Hist.create () in
          let sent = ref 0 and completed = ref 0 and errors = ref 0 in
          Array.iter
            (fun r ->
              match r with
              | Error _ -> ()
              | Ok co ->
                  Telemetry.Hist.merge_into ~dst:hist co.co_hist;
                  sent := !sent + co.co_sent;
                  completed := !completed + co.co_completed;
                  errors := !errors + co.co_errors)
            results;
          Ok
            {
              s_protocol = cfg.protocol;
              s_target_qps = cfg.target_qps;
              s_achieved_qps =
                (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s
                 else 0.0);
              s_sent = !sent;
              s_completed = !completed;
              s_errors = !errors;
              s_elapsed_s = elapsed_s;
              s_hist = hist;
            }

let latency_of_summary ~metric s =
  let h = s.s_hist in
  {
    Bench_util.Json_out.metric;
    count = Telemetry.Hist.count h;
    p50_ns = Telemetry.Hist.quantile h 0.5;
    p90_ns = Telemetry.Hist.quantile h 0.9;
    p99_ns = Telemetry.Hist.quantile h 0.99;
    p999_ns = Telemetry.Hist.quantile h 0.999;
    mean_ns = Telemetry.Hist.mean h;
  }
