type t = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  rbuf : Bytes.t;
  ebuf : Buffer.t;
  pending : (int, Frame.response) Hashtbl.t;
      (* out-of-order responses stashed by [request] *)
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (addr, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true
  with
  | () ->
      Ok
        {
          fd;
          dec = Frame.Decoder.create ();
          rbuf = Bytes.create 65536;
          ebuf = Buffer.create 256;
          pending = Hashtbl.create 8;
          next_id = 1;
          closed = false;
        }
  | exception Unix.Unix_error (err, fn, _) ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error (e2, _, _) -> ignore e2);
      Error
        (Printf.sprintf "connect %s:%d: %s (%s)" host port
           (Unix.error_message err) fn)

let close t =
  if not t.closed then begin
    t.closed <- true;
    match Unix.close t.fd with
    | () -> ()
    | exception Unix.Unix_error (err, _, _) -> ignore err
  end

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let send t ~id req =
  if t.closed then Error "connection closed"
  else begin
    Buffer.clear t.ebuf;
    Frame.encode_request t.ebuf ~id req;
    let s = Buffer.contents t.ebuf in
    (* SAFETY: Bytes.unsafe_of_string aliases an immutable string that
       write(2) only reads; the bytes are never mutated. *)
    match write_all t.fd (Bytes.unsafe_of_string s) 0 (String.length s) with
    | () -> Ok ()
    | exception Unix.Unix_error (err, fn, _) ->
        Error (Printf.sprintf "send: %s (%s)" (Unix.error_message err) fn)
  end

let poll t timeout_s =
  if t.closed then false
  else if Frame.Decoder.buffered t.dec > 0 then true
  else
    match Unix.select [ t.fd ] [] [] timeout_s with
    | [], _, _ -> false
    | _ :: _, _, _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    | exception Unix.Unix_error (err, _, _) ->
        ignore err;
        false

let rec recv t =
  if t.closed then Error "connection closed"
  else
    match Frame.Decoder.next t.dec with
    | Frame.Corrupt msg -> Error (Printf.sprintf "corrupt frame: %s" msg)
    | Frame.Frame (id, tag, payload) -> (
        match Frame.parse_response ~tag payload with
        | Ok resp -> Ok (id, resp)
        | Error msg -> Error (Printf.sprintf "bad response: %s" msg))
    | Frame.Need_more -> (
        match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
        | 0 -> Error "connection closed by server"
        | n ->
            Frame.Decoder.feed t.dec t.rbuf 0 n;
            recv t
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
        | exception Unix.Unix_error (err, fn, _) ->
            Error (Printf.sprintf "recv: %s (%s)" (Unix.error_message err) fn))

let request t req =
  let id = t.next_id in
  t.next_id <- (if id >= 0x3FFFFFFF then 1 else id + 1);
  match Hashtbl.find_opt t.pending id with
  | Some resp ->
      Hashtbl.remove t.pending id;
      Ok resp
  | None -> (
      match send t ~id req with
      | Error _ as e -> e
      | Ok () ->
          let rec await () =
            match recv t with
            | Error _ as e -> e
            | Ok (rid, resp) ->
                if rid = id then Ok resp
                else begin
                  Hashtbl.replace t.pending rid resp;
                  await ()
                end
          in
          await ())
