(** hyperion.net wire protocol: the length-prefixed binary frame codec.

    Every message on a binary connection is one frame:

    {v
    +-----------+-----------+----------+------------------+
    | len u32le | id  u32le | tag u8   | payload (len-5)  |
    +-----------+-----------+----------+------------------+
    v}

    [len] counts everything after itself ([id] + [tag] + payload), so a
    complete frame occupies [4 + len] bytes.  [id] is a client-chosen
    request identifier echoed verbatim in the response; because the server
    may answer pipelined requests {e out of order} (lock-free gets overtake
    mailbox-acknowledged mutations), clients correlate by [id], never by
    arrival order.  [tag] is the request opcode on the way in and the
    response status on the way out.  All integers are little-endian;
    lengths are unsigned.  Frames larger than {!max_frame_len} are a
    protocol error: the decoder refuses them without buffering (a torn or
    hostile length prefix must not allocate gigabytes).

    This module is pure (no I/O): encoders append to a [Buffer.t], and the
    streaming {!Decoder} consumes arbitrarily-split byte chunks, yielding
    complete frames as they close — exactly what a socket reader loop
    needs for pipelined traffic.  See DESIGN.md section 13 for the full
    protocol specification. *)

val max_frame_len : int
(** Upper bound on [len] (16 MiB). *)

val max_key_len : int
(** Upper bound on a key ([2^20], the store's own limit). *)

val max_batch_ops : int
(** Upper bound on operations in one [Batch] frame (65536). *)

(** {1 Requests} *)

type batch_op =
  | Bput of string * int64
  | Badd of string
  | Bdel of string

type request =
  | Put of string * int64
  | Add of string
  | Get of string
  | Mem of string
  | Delete of string
  | Batch of batch_op array
  | Stats
  | Health

val opcode : request -> int
(** The wire opcode (Put=1, Add=2, Get=3, Mem=4, Delete=5, Batch=6,
    Stats=7, Health=8). *)

(** {1 Responses} *)

(** Typed protocol error codes, a superset of {!Hyperion.Hyperion_error.t}
    (codes 1–14 map its constructors; 100+ are protocol-layer errors). *)
type err_code =
  | E_arena_saturated  (** 1 *)
  | E_alloc_failed  (** 2 *)
  | E_container_overflow  (** 3 *)
  | E_restart_budget  (** 4 *)
  | E_chunk_corrupt  (** 5 *)
  | E_empty_key  (** 6 *)
  | E_key_too_long  (** 7 *)
  | E_corrupt_snapshot  (** 8 *)
  | E_torn_log  (** 9 *)
  | E_version_mismatch  (** 10 *)
  | E_io  (** 11 *)
  | E_degraded  (** 12 *)
  | E_overloaded  (** 13 *)
  | E_shard_down  (** 14 *)
  | E_bad_request  (** 100: malformed frame, unknown opcode, bad key *)
  | E_too_large  (** 101: frame or batch beyond the protocol bounds *)
  | E_internal  (** 102: unexpected server-side exception *)

val err_code_int : err_code -> int
val err_code_of_int : int -> err_code option
val err_of_hyperion : Hyperion.Hyperion_error.t -> err_code

type shard_health = {
  sh_shard : int;
  sh_alive : bool;
  sh_degraded : bool;
  sh_backlog : int;
}

type stats = {
  st_keys : int64;
  st_resident_bytes : int64;
  st_shards : int;
  st_saturated_arenas : int;
}

type response =
  | Ack  (** Put/Add applied (and logged when durable) *)
  | Value of int64 option  (** Get: [None] = key absent or valueless *)
  | Found of bool  (** Mem / Delete *)
  | Applied of int  (** Batch: mutations applied *)
  | Stats_r of stats
  | Health_r of shard_health array
  | Err of err_code * string  (** status <> 0; payload is the message *)

(** {1 Encoding} *)

val encode_request : Buffer.t -> id:int -> request -> unit
(** Append one request frame.  [id] is truncated to 32 bits. *)

val encode_response : Buffer.t -> id:int -> response -> unit
(** Append one response frame. *)

(** {1 Streaming decode}

    Feed raw bytes in whatever chunks the transport delivers; pop complete
    frames.  The decoder owns an internal accumulation buffer and is not
    thread-safe (one per connection side). *)

type decoded =
  | Frame of int * int * string
      (** [(id, tag, payload)] — one complete frame *)
  | Need_more  (** no complete frame buffered yet *)
  | Corrupt of string
      (** unrecoverable framing error (oversized or short length);
          the connection must be closed *)

module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends a received chunk. *)

  val feed_string : t -> string -> unit

  val next : t -> decoded
  (** Pop the next complete frame.  After [Corrupt] the decoder is
      poisoned and keeps returning it. *)

  val buffered : t -> int
  (** Bytes held, for backpressure accounting and tests. *)
end

(** {1 Payload parsing} *)

val parse_request : tag:int -> string -> (request, string) result
(** Decode the payload of a request frame.  [Error] is a human-readable
    reason (the server answers [Err (E_bad_request, reason)]). *)

val parse_response : tag:int -> string -> (response, string) result
(** Decode the payload of a response frame (client side). *)
