(* Level 1: implicit (the 16-bit fragment is the index).  Level 2: 2^16
   slots, each either empty or referencing a 1024-bucket array.  Level 3:
   compressed nodes of up to 64 entries with an existence bitmap. *)

type leaf = { mutable bitmap : int64; mutable vals : int64 array }
(* vals is exact-fit: popcount(bitmap) entries in fragment order *)

type t = {
  l2 : leaf option array option array;  (* 2^16 -> 1024 buckets -> leaf *)
  mutable count : int;
}

let name = "KISS-Tree"

let create () = { l2 = Array.make 65536 None; count = 0 }

let check_key key =
  if String.length key <> 4 then
    invalid_arg "Kiss_tree: keys must be exactly 4 bytes (32-bit)"

let fragments key =
  check_key key;
  let v = Int32.to_int (String.get_int32_be key 0) land 0xffffffff in
  (v lsr 16, (v lsr 6) land 0x3ff, v land 0x3f)

let popcount_below bm frag =
  let below = if frag = 0 then 0L else Int64.shift_left 1L frag |> Int64.pred in
  let x = Int64.logand bm below in
  let rec go x acc =
    if x = 0L then acc
    else go (Int64.logand x (Int64.pred x)) (acc + 1)
  in
  go x 0

let exists bm frag = Int64.logand bm (Int64.shift_left 1L frag) <> 0L

let put t key value =
  let f1, f2, f3 = fragments key in
  let bucket =
    match t.l2.(f1) with
    | Some b -> b
    | None ->
        let b = Array.make 1024 None in
        t.l2.(f1) <- Some b;
        b
  in
  match bucket.(f2) with
  | None ->
      bucket.(f2) <-
        Some { bitmap = Int64.shift_left 1L f3; vals = [| value |] };
      t.count <- t.count + 1
  | Some leaf ->
      let ix = popcount_below leaf.bitmap f3 in
      if exists leaf.bitmap f3 then leaf.vals.(ix) <- value
      else begin
        (* exact-fit copy-on-write insert, as in the original *)
        let n = Array.length leaf.vals in
        let vals = Array.make (n + 1) value in
        Array.blit leaf.vals 0 vals 0 ix;
        Array.blit leaf.vals ix vals (ix + 1) (n - ix);
        leaf.vals <- vals;
        leaf.bitmap <- Int64.logor leaf.bitmap (Int64.shift_left 1L f3);
        t.count <- t.count + 1
      end

let get t key =
  let f1, f2, f3 = fragments key in
  match t.l2.(f1) with
  | None -> None
  | Some bucket -> (
      match bucket.(f2) with
      | Some leaf when exists leaf.bitmap f3 ->
          Some leaf.vals.(popcount_below leaf.bitmap f3)
      | _ -> None)

let mem t key = get t key <> None

let delete t key =
  let f1, f2, f3 = fragments key in
  match t.l2.(f1) with
  | None -> false
  | Some bucket -> (
      match bucket.(f2) with
      | Some leaf when exists leaf.bitmap f3 ->
          let ix = popcount_below leaf.bitmap f3 in
          let n = Array.length leaf.vals in
          if n = 1 then bucket.(f2) <- None
          else begin
            let vals = Array.make (n - 1) 0L in
            Array.blit leaf.vals 0 vals 0 ix;
            Array.blit leaf.vals (ix + 1) vals ix (n - 1 - ix);
            leaf.vals <- vals;
            leaf.bitmap <- Int64.logand leaf.bitmap (Int64.lognot (Int64.shift_left 1L f3))
          end;
          t.count <- t.count - 1;
          true
      | _ -> false)

exception Stop

let key_of f1 f2 f3 =
  let v = Int32.of_int ((f1 lsl 16) lor (f2 lsl 6) lor f3) in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 v;
  (* SAFETY: [b] is freshly allocated, fully written, and never mutated or
     aliased after this conversion. *)
  Bytes.unsafe_to_string b

let range t ?(start = "") f =
  let start_v =
    if start = "" then 0
    else if String.length start >= 4 then
      Int32.to_int (String.get_int32_be start 0) land 0xffffffff
    else
      (* shorter bounds compare as left-aligned prefixes *)
      let b = Bytes.make 4 '\000' in
      Bytes.blit_string start 0 b 0 (String.length start);
      Int32.to_int (Bytes.get_int32_be b 0) land 0xffffffff
  in
  try
    for f1 = start_v lsr 16 to 65535 do
      match t.l2.(f1) with
      | None -> ()
      | Some bucket ->
          for f2 = 0 to 1023 do
            match bucket.(f2) with
            | None -> ()
            | Some leaf ->
                let ix = ref 0 in
                for f3 = 0 to 63 do
                  if exists leaf.bitmap f3 then begin
                    let v = ((f1 lsl 16) lor (f2 lsl 6)) lor f3 in
                    if v >= start_v then
                      if not (f (key_of f1 f2 f3) (Some leaf.vals.(!ix))) then
                        raise Stop;
                    incr ix
                  end
                done
          done
    done
  with Stop -> ()

let length t = t.count

(* level-2 slot arrays of compact 32-bit pointers; level-3 nodes with a
   64-bit map plus exact-fit values *)
let memory_usage t =
  let total = ref (65536 * 8) in
  Array.iter
    (function
      | None -> ()
      | Some bucket ->
          total := !total + Kvcommon.Mem_model.malloc (1024 * 4);
          Array.iter
            (function
              | None -> ()
              | Some leaf ->
                  total :=
                    !total
                    + Kvcommon.Mem_model.malloc
                        (8 + (8 * Array.length leaf.vals)))
            bucket)
    t.l2;
  !total
