(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section 4).  Run all experiments with [dune exec
   bench/main.exe], or a subset by name:

     dune exec bench/main.exe -- table1 fig14

   Scale knobs (environment):
     HYPERION_BENCH_N       integer keys per data set   (default 200_000)
     HYPERION_BENCH_NGRAMS  string keys per data set    (default 100_000)
     HYPERION_BENCH_BUDGET  fig13 memory budget, bytes  (default 64 MiB)

   [bechamel] runs one Bechamel micro-benchmark per table (put/get kernels
   for each structure) with confidence intervals. *)

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let n_int () = env_int "HYPERION_BENCH_N" 500_000
let n_str () = env_int "HYPERION_BENCH_NGRAMS" 300_000
let budget () = env_int "HYPERION_BENCH_BUDGET" (64 * 1024 * 1024)

(* ---- Bechamel micro-kernels: one Test.make per table ---- *)

let bechamel_tests () =
  let open Bechamel in
  let keys =
    let ds = Workload.Dataset.rand_ints 50_000 in
    Array.map fst ds.Workload.Dataset.pairs
  in
  let skeys =
    let ds = Workload.Dataset.ngrams_random 20_000 in
    Array.map fst ds.Workload.Dataset.pairs
  in
  let kernel_put name (d : Bench_util.Driver.driver) keys =
    Test.make_with_resource ~name Test.uniq
      ~allocate:(fun () -> (Bench_util.Driver.open_instance d, ref 0))
      ~free:(fun _ -> ())
      (Staged.stage (fun (inst, i) ->
           let k = keys.(!i mod Array.length keys) in
           incr i;
           Bench_util.Driver.put inst k 1L))
  in
  let kernel_get name (d : Bench_util.Driver.driver) keys =
    Test.make_with_resource ~name Test.uniq
      ~allocate:(fun () ->
        let inst = Bench_util.Driver.open_instance d in
        Array.iter (fun k -> Bench_util.Driver.put inst k 1L) keys;
        (inst, ref 0))
      ~free:(fun _ -> ())
      (Staged.stage (fun (inst, i) ->
           let k = keys.(!i mod Array.length keys) in
           incr i;
           ignore (Bench_util.Driver.get inst k)))
  in
  let per_driver make label keys drivers =
    List.map (fun d -> make (label ^ "/" ^ d.Bench_util.Driver.dname) d keys) drivers
  in
  [
    (* Table 2 kernels: integer keys *)
    Test.make_grouped ~name:"table2-put"
      (per_driver kernel_put "int-put" keys
         (List.filter
            (fun d -> d.Bench_util.Driver.dname <> "Hyperion_p")
            (Bench_util.Driver.for_integers ())));
    Test.make_grouped ~name:"table2-get"
      (per_driver kernel_get "int-get" keys
         (List.filter
            (fun d -> d.Bench_util.Driver.dname <> "Hyperion_p")
            (Bench_util.Driver.for_integers ())));
    (* Table 1 kernels: string keys *)
    Test.make_grouped ~name:"table1-put"
      (per_driver kernel_put "str-put" skeys (Bench_util.Driver.for_strings ()));
    Test.make_grouped ~name:"table1-get"
      (per_driver kernel_get "str-get" skeys (Bench_util.Driver.for_strings ()));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
             (Instance.monotonic_clock)
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-40s %12.1f ns/op\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    (bechamel_tests ())

(* ---- Durability: snapshot bandwidth, WAL replay rate, cold load ---- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let durability () =
  let n = n_str () in
  let config = Hyperion.Config.strings in
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Durability (n = %d string keys)\n\n" n;
  let store = Hyperion.Store.create ~config () in
  let (), fresh_s =
    time (fun () -> Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs)
  in
  (* snapshot write bandwidth *)
  let path = Filename.temp_file "hyperion_bench" ".hyp" in
  let bytes, write_s =
    time (fun () ->
        match Persist.save_snapshot store path with
        | Ok b -> b
        | Error e -> failwith (Hyperion.Hyperion_error.to_string e))
  in
  Printf.printf "snapshot write      %8.1f MB/s  (%d bytes in %.3f s)\n"
    (float_of_int bytes /. 1e6 /. write_s)
    bytes write_s;
  (* cold load vs fresh insertion *)
  let loaded, load_s =
    time (fun () ->
        match Persist.load_snapshot ~config path with
        | Ok s -> s
        | Error e -> failwith (Hyperion.Hyperion_error.to_string e))
  in
  assert (Hyperion.Store.length loaded = Hyperion.Store.length store);
  Printf.printf "cold load           %8.1f MB/s  (%.3f s; fresh insert %.3f s, %.2fx)\n"
    (float_of_int bytes /. 1e6 /. load_s)
    load_s fresh_s (fresh_s /. load_s);
  Sys.remove path;
  (* WAL replay rate: log everything, then measure recovery replay *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hyperion_bench_wal" in
  rm_rf dir;
  let fail e = failwith (Hyperion.Hyperion_error.to_string e) in
  let p =
    match Persist.open_or_create ~config ~sync_every_ops:1024 dir with
    | Ok p -> p
    | Error e -> fail e
  in
  let (), append_s =
    time (fun () ->
        Array.iter
          (fun (k, v) ->
            match Persist.put p k v with Ok () -> () | Error e -> fail e)
          pairs)
  in
  (match Persist.close p with Ok () -> () | Error e -> fail e);
  Printf.printf "WAL append          %8.0f ops/s (group commit every 1024 ops)\n"
    (float_of_int n /. append_s);
  let p2, replay_s =
    time (fun () ->
        match Persist.open_or_create ~config dir with
        | Ok p -> p
        | Error e -> fail e)
  in
  let r = Persist.recovery p2 in
  Printf.printf "WAL replay          %8.0f ops/s (%d records in %.3f s)\n"
    (float_of_int r.Persist.replayed_ops /. replay_s)
    r.Persist.replayed_ops replay_s;
  ignore (Persist.close p2);
  rm_rf dir;
  print_newline ()

let all_experiments =
  [
    ("table1", fun () -> Bench_util.Experiments.table1 ~n:(n_str ()));
    ("table2", fun () -> Bench_util.Experiments.table2 ~n:(n_int ()));
    ( "table3",
      fun () ->
        Bench_util.Experiments.table3 ~n_int:(n_int ()) ~n_str:(n_str ()) );
    ("fig13", fun () -> Bench_util.Experiments.fig13 ~budget:(budget ()));
    ("fig14", fun () -> Bench_util.Experiments.fig14 ~n:(n_str ()));
    ("fig15", fun () -> Bench_util.Experiments.fig15 ~n:(n_int ()));
    ("fig16", fun () -> Bench_util.Experiments.fig16 ~n:(n_int ()));
    ( "arenas",
      fun () -> Bench_util.Experiments.arena_scaling ~n:(max 1 (n_int () / 5)) );
    ("ablation", fun () -> Bench_util.Experiments.ablation ~n:(n_str ()));
    ("durability", fun () -> durability ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let selected =
    match args with
    | [] -> List.map fst all_experiments
    | names -> names
  in
  List.iter
    (fun name ->
      if name = "bechamel" then run_bechamel ()
      else
        match List.assoc_opt name all_experiments with
        | Some f ->
            f ();
            flush stdout
        | None ->
            Printf.eprintf
              "unknown experiment %S (known: %s, bechamel)\n" name
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
    selected
