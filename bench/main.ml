(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section 4).  Run all experiments with [dune exec
   bench/main.exe], or a subset by name:

     dune exec bench/main.exe -- table1 fig14

   Scale knobs (environment):
     HYPERION_BENCH_N       integer keys per data set   (default 200_000)
     HYPERION_BENCH_NGRAMS  string keys per data set    (default 100_000)
     HYPERION_BENCH_BUDGET  fig13 memory budget, bytes  (default 64 MiB)

   [bechamel] runs one Bechamel micro-benchmark per table (put/get kernels
   for each structure) with confidence intervals. *)

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let n_int () = env_int "HYPERION_BENCH_N" 500_000
let n_str () = env_int "HYPERION_BENCH_NGRAMS" 300_000
let budget () = env_int "HYPERION_BENCH_BUDGET" (64 * 1024 * 1024)

(* ---- Bechamel micro-kernels: one Test.make per table ---- *)

let bechamel_tests () =
  let open Bechamel in
  let keys =
    let ds = Workload.Dataset.rand_ints 50_000 in
    Array.map fst ds.Workload.Dataset.pairs
  in
  let skeys =
    let ds = Workload.Dataset.ngrams_random 20_000 in
    Array.map fst ds.Workload.Dataset.pairs
  in
  let kernel_put name (d : Bench_util.Driver.driver) keys =
    Test.make_with_resource ~name Test.uniq
      ~allocate:(fun () -> (Bench_util.Driver.open_instance d, ref 0))
      ~free:(fun _ -> ())
      (Staged.stage (fun (inst, i) ->
           let k = keys.(!i mod Array.length keys) in
           incr i;
           Bench_util.Driver.put inst k 1L))
  in
  let kernel_get name (d : Bench_util.Driver.driver) keys =
    Test.make_with_resource ~name Test.uniq
      ~allocate:(fun () ->
        let inst = Bench_util.Driver.open_instance d in
        Array.iter (fun k -> Bench_util.Driver.put inst k 1L) keys;
        (inst, ref 0))
      ~free:(fun _ -> ())
      (Staged.stage (fun (inst, i) ->
           let k = keys.(!i mod Array.length keys) in
           incr i;
           ignore (Bench_util.Driver.get inst k)))
  in
  let per_driver make label keys drivers =
    List.map (fun d -> make (label ^ "/" ^ d.Bench_util.Driver.dname) d keys) drivers
  in
  [
    (* Table 2 kernels: integer keys *)
    Test.make_grouped ~name:"table2-put"
      (per_driver kernel_put "int-put" keys
         (List.filter
            (fun d -> d.Bench_util.Driver.dname <> "Hyperion_p")
            (Bench_util.Driver.for_integers ())));
    Test.make_grouped ~name:"table2-get"
      (per_driver kernel_get "int-get" keys
         (List.filter
            (fun d -> d.Bench_util.Driver.dname <> "Hyperion_p")
            (Bench_util.Driver.for_integers ())));
    (* Table 1 kernels: string keys *)
    Test.make_grouped ~name:"table1-put"
      (per_driver kernel_put "str-put" skeys (Bench_util.Driver.for_strings ()));
    Test.make_grouped ~name:"table1-get"
      (per_driver kernel_get "str-get" skeys (Bench_util.Driver.for_strings ()));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
             (Instance.monotonic_clock)
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-40s %12.1f ns/op\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    (bechamel_tests ())

(* ---- Durability: snapshot bandwidth, WAL replay rate, cold load ---- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let durability () =
  let n = n_str () in
  let config = Hyperion.Config.strings in
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Durability (n = %d string keys)\n\n" n;
  let store = Hyperion.Store.create ~config () in
  let (), fresh_s =
    time (fun () -> Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs)
  in
  (* snapshot write bandwidth *)
  let path = Filename.temp_file "hyperion_bench" ".hyp" in
  let bytes, write_s =
    time (fun () ->
        match Persist.save_snapshot store path with
        | Ok b -> b
        | Error e -> failwith (Hyperion.Hyperion_error.to_string e))
  in
  Printf.printf "snapshot write      %8.1f MB/s  (%d bytes in %.3f s)\n"
    (float_of_int bytes /. 1e6 /. write_s)
    bytes write_s;
  (* cold load vs fresh insertion *)
  let loaded, load_s =
    time (fun () ->
        match Persist.load_snapshot ~config path with
        | Ok (s, _enc) -> s
        | Error e -> failwith (Hyperion.Hyperion_error.to_string e))
  in
  assert (Hyperion.Store.length loaded = Hyperion.Store.length store);
  Printf.printf "cold load           %8.1f MB/s  (%.3f s; fresh insert %.3f s, %.2fx)\n"
    (float_of_int bytes /. 1e6 /. load_s)
    load_s fresh_s (fresh_s /. load_s);
  Sys.remove path;
  (* WAL replay rate: log everything, then measure recovery replay *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hyperion_bench_wal" in
  rm_rf dir;
  let fail e = failwith (Hyperion.Hyperion_error.to_string e) in
  let p =
    match Persist.open_or_create ~config ~sync_every_ops:1024 dir with
    | Ok p -> p
    | Error e -> fail e
  in
  let (), append_s =
    time (fun () ->
        Array.iter
          (fun (k, v) ->
            match Persist.put p k v with Ok () -> () | Error e -> fail e)
          pairs)
  in
  (match Persist.close p with Ok () -> () | Error e -> fail e);
  Printf.printf "WAL append          %8.0f ops/s (group commit every 1024 ops)\n"
    (float_of_int n /. append_s);
  let p2, replay_s =
    time (fun () ->
        match Persist.open_or_create ~config dir with
        | Ok p -> p
        | Error e -> fail e)
  in
  let r = Persist.recovery p2 in
  Printf.printf "WAL replay          %8.0f ops/s (%d records in %.3f s)\n"
    (float_of_int r.Persist.replayed_ops /. replay_s)
    r.Persist.replayed_ops replay_s;
  ignore (Persist.close p2);
  rm_rf dir;
  print_newline ()

(* ---- Sharded front-end: domains vs. throughput ---- *)

let json_dir : string option ref = ref None

let shards_bench () =
  let n = max 1 (n_int () / 5) in
  let ds = Workload.Dataset.rand_ints n in
  let pairs = ds.Workload.Dataset.pairs in
  let cores = Domain.recommended_domain_count () in
  let config = { Hyperion.Config.default with chunks_per_bin = 64 } in
  Printf.printf
    "## Sharded front-end scaling (n = %d random integer keys, %d core(s))\n\n"
    n cores;
  if cores < 4 then
    Printf.printf
      "NOTE: fewer than 4 cores available — domain counts above %d time-slice\n\
       one another and cannot show real scaling.\n\n"
      cores;
  (* telemetry on for the whole experiment: worker domains feed the put
     histogram through the typed-result path, so the JSON gains real
     percentiles; the throughput cost is the documented overhead (< 5%) *)
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let rows = ref [] in
  let record label domains secs bytes_per_key =
    rows :=
      {
        Bench_util.Json_out.label;
        domains;
        ops_per_s = float_of_int (Array.length pairs) /. secs;
        bytes_per_key;
      }
      :: !rows
  in
  (* single-store, single-domain baseline *)
  let baseline label each =
    let store = Hyperion.Store.create ~config () in
    let secs = Bench_util.Measure.time (fun () -> each store) in
    record label 1 secs
      (if label = "baseline-insert" then
         Bench_util.Measure.bytes_per_key
           (Hyperion.Store.memory_usage store)
           (Hyperion.Store.length store)
       else 0.0);
    secs
  in
  let base_insert =
    baseline "baseline-insert" (fun store ->
        Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs)
  in
  let base_mixed =
    baseline "baseline-mixed" (fun store ->
        Array.iteri
          (fun i (k, v) ->
            if i land 1 = 0 then Hyperion.Store.put store k v
            else ignore (Hyperion.Store.get store k))
          pairs)
  in
  Printf.printf "%-8s %10s %12s %12s %10s\n" "phase" "domains" "Mops" "speedup"
    "B/key";
  let hr () = print_endline (String.make 56 '-') in
  hr ();
  let mops secs = Bench_util.Measure.mops (Array.length pairs) secs in
  Printf.printf "%-8s %10d %12.3f %12s %10.1f\n" "insert" 1 (mops base_insert)
    "1.00x (st)"
    (List.find (fun r -> r.Bench_util.Json_out.label = "baseline-insert") !rows)
      .Bench_util.Json_out.bytes_per_key;
  Printf.printf "%-8s %10d %12.3f %12s %10s\n" "mixed" 1 (mops base_mixed)
    "1.00x (st)" "-";
  (* sharded: D client domains feeding D worker domains; inserts ship
     through the batch path (one mailbox round-trip per 128 ops per shard),
     reads are direct *)
  let sharded domains =
    let t = Hyperion_shard.create ~config ~shards:domains () in
    let chunk = Array.length pairs / domains in
    let slice d f =
      let lo = d * chunk in
      let hi = if d = domains - 1 then Array.length pairs else lo + chunk in
      for i = lo to hi - 1 do
        f i pairs.(i)
      done
    in
    let drive each =
      Bench_util.Measure.time (fun () ->
          let spawned =
            List.init (domains - 1) (fun d -> Domain.spawn (fun () -> each (d + 1)))
          in
          each 0;
          List.iter Domain.join spawned)
    in
    let client_batched pick d =
      let b = Hyperion_shard.Batch.create t in
      let flush () =
        match Hyperion_shard.Batch.flush b with
        | Ok _ -> ()
        | Error e -> failwith (Hyperion.Hyperion_error.to_string e)
      in
      slice d (fun i (k, v) ->
          pick b i k v;
          if Hyperion_shard.Batch.length b >= 128 then flush ());
      flush ()
    in
    let insert_s =
      drive (client_batched (fun b _ k v -> Hyperion_shard.Batch.put b k v))
    in
    if Hyperion_shard.length t <> Array.length pairs then
      failwith "sharded insert lost keys";
    let bpk =
      Bench_util.Measure.bytes_per_key
        (Hyperion_shard.memory_usage t)
        (Hyperion_shard.length t)
    in
    let lookup_s =
      drive (fun d ->
          slice d (fun _ (k, _) -> ignore (Hyperion_shard.get t k)))
    in
    let mixed_s =
      drive
        (client_batched (fun b i k v ->
             if i land 1 = 0 then Hyperion_shard.Batch.put b k v
             else ignore (Hyperion_shard.get t k)))
    in
    (match Hyperion_shard.close t with
    | Ok () -> ()
    | Error e -> failwith (Hyperion.Hyperion_error.to_string e));
    record "insert" domains insert_s bpk;
    record "lookup" domains lookup_s 0.0;
    record "mixed" domains mixed_s 0.0;
    Printf.printf "%-8s %10d %12.3f %11.2fx %10.1f\n" "insert" domains
      (mops insert_s) (base_insert /. insert_s) bpk;
    Printf.printf "%-8s %10d %12.3f %12s %10s\n" "lookup" domains
      (mops lookup_s) "-" "-";
    Printf.printf "%-8s %10d %12.3f %11.2fx %10s\n" "mixed" domains
      (mops mixed_s) (base_mixed /. mixed_s) "-"
  in
  List.iter sharded [ 1; 2; 4; 8 ];
  hr ();
  let telemetry = Bench_util.Telemetry_bench.latencies () in
  Telemetry.set_enabled was_enabled;
  (match !json_dir with
  | None -> ()
  | Some dir ->
      let path =
        Bench_util.Json_out.write ~dir ~experiment:"shards" ~n
          ~config:
            [
              ("chunks_per_bin", "64");
              ("cores", string_of_int cores);
              ("batch_flush", "128");
            ]
          ~telemetry ~rows:(List.rev !rows) ()
      in
      Printf.printf "json -> %s\n" path);
  print_newline ()

let all_experiments =
  [
    ("table1", fun () -> Bench_util.Experiments.table1 ~n:(n_str ()));
    ("table2", fun () -> Bench_util.Experiments.table2 ~n:(n_int ()));
    ( "table3",
      fun () ->
        Bench_util.Experiments.table3 ~n_int:(n_int ()) ~n_str:(n_str ()) );
    ("fig13", fun () -> Bench_util.Experiments.fig13 ~budget:(budget ()));
    ("fig14", fun () -> Bench_util.Experiments.fig14 ~n:(n_str ()));
    ("fig15", fun () -> Bench_util.Experiments.fig15 ~n:(n_int ()));
    ("fig16", fun () -> Bench_util.Experiments.fig16 ~n:(n_int ()));
    ( "arenas",
      fun () -> Bench_util.Experiments.arena_scaling ~n:(max 1 (n_int () / 5)) );
    ("ablation", fun () -> Bench_util.Experiments.ablation ~n:(n_str ()));
    ("durability", fun () -> durability ());
    ("shards", fun () -> shards_bench ());
    ( "insert",
      fun () ->
        ignore
          (Bench_util.Telemetry_bench.insert ~n:(n_str ())
             ?json_dir:!json_dir ()) );
    ( "probe",
      fun () ->
        ignore
          (Bench_util.Probe_bench.probe ~n:(n_str ()) ?json_dir:!json_dir ());
        Bench_util.Probe_bench.comparison ~n:(max 1 (n_str () / 6)) () );
  ]

let () =
  (* strip "--json DIR" (machine-readable output directory) from the
     experiment-name arguments *)
  let rec split_args = function
    | [] -> []
    | "--json" :: dir :: rest ->
        json_dir := Some dir;
        split_args rest
    | "--json" :: [] ->
        prerr_endline "--json needs a directory argument";
        exit 2
    | name :: rest -> name :: split_args rest
  in
  let args = split_args (Array.to_list Sys.argv |> List.tl) in
  let selected =
    match args with
    | [] -> List.map fst all_experiments
    | names -> names
  in
  List.iter
    (fun name ->
      if name = "bechamel" then run_bechamel ()
      else
        match List.assoc_opt name all_experiments with
        | Some f ->
            f ();
            flush stdout
        | None ->
            Printf.eprintf
              "unknown experiment %S (known: %s, bechamel)\n" name
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
    selected
