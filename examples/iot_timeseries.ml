(* IoT time-series indexing (paper Section 1: traffic time series on edge
   devices with limited memory) — now durable across process restarts.

   Keys: sensor id (2 bytes) ^ timestamp (8 bytes, big-endian) — so a range
   query over one sensor's window is a contiguous key interval.  Values:
   the measurement.

   The example runs as two phases of the same edge process:
     phase 1  ingest through the durability layer (snapshot + WAL), then
              die abruptly — no clean shutdown;
     phase 2  reopen the same directory, recover (snapshot + WAL replay,
              torn tail cut), and serve window queries and retention on
              the recovered store.

   Run with:  dune exec examples/iot_timeseries.exe *)

let sensor_key ~sensor ~ts =
  let b = Bytes.create 10 in
  Bytes.set_uint16_be b 0 sensor;
  Bytes.set_int64_be b 2 ts;
  Bytes.unsafe_to_string b

let config = { Hyperion.Config.default with chunks_per_bin = 64 }
let sensors = 64
let samples = 2000

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline (Hyperion.Hyperion_error.to_string e);
      exit 1

(* -- phase 1: ingest, then crash ------------------------------------- *)

let phase1 dir =
  let p =
    or_die (Persist.open_or_create ~config ~sync_every_ops:256 dir)
  in
  let rng = Workload.Mt19937_64.create 2026L in
  let ts = Array.make sensors 1_700_000_000_000L in
  (* interleaved sensors, monotone timestamps with jitter *)
  for _ = 1 to samples do
    for s = 0 to sensors - 1 do
      ts.(s) <-
        Int64.add ts.(s) (Int64.of_int (500 + Workload.Mt19937_64.next_below rng 1000));
      let measurement = Int64.of_int (Workload.Mt19937_64.next_below rng 10_000) in
      or_die (Persist.put p (sensor_key ~sensor:s ~ts:ts.(s)) measurement)
    done
  done;
  let store = Persist.store p in
  Printf.printf "phase 1: ingested %d samples from %d sensors\n"
    (Hyperion.Store.length store) sensors;
  Printf.printf "phase 1: resident %.2f MiB (%.1f B/sample)\n"
    (float_of_int (Hyperion.Store.memory_usage store) /. 1048576.)
    (float_of_int (Hyperion.Store.memory_usage store)
    /. float_of_int (Hyperion.Store.length store));
  Printf.printf "phase 1: logged %d ops, %d durable — crashing without close\n"
    (Persist.applied_ops p) (Persist.durable_ops p);
  (* abrupt death: the WAL descriptor is dropped without a final sync *)
  Persist.crash p

(* -- phase 2: recover and serve --------------------------------------- *)

let phase2 dir =
  let p = or_die (Persist.open_or_create ~config dir) in
  let r = Persist.recovery p in
  Printf.printf
    "phase 2: recovered generation %d — %d snapshot keys + %d WAL ops%s\n"
    r.Persist.generation r.Persist.snapshot_keys r.Persist.replayed_ops
    (if r.Persist.wal_truncated then " (torn tail cut)" else "");
  let store = Persist.store p in
  Printf.printf "phase 2: %d samples survived the crash\n"
    (Hyperion.Store.length store);

  (* Window query: sensor 17's full key interval. *)
  let sensor = 17 in
  let from = sensor_key ~sensor ~ts:0L in
  let count = ref 0 and sum = ref 0L in
  Hyperion.Store.range store ~start:from (fun key value ->
      (* stop at the next sensor's key space *)
      if String.length key >= 2 && Bytes.get_uint16_be (Bytes.of_string key) 0 = sensor
      then begin
        incr count;
        (match value with Some v -> sum := Int64.add !sum v | None -> ());
        true
      end
      else false);
  Printf.printf "phase 2: sensor %d: %d samples, mean measurement %.1f\n" sensor
    !count
    (Int64.to_float !sum /. float_of_int (max 1 !count));

  (* Retention: drop everything older than a cutoff for sensor 17 — the
     deletes go through the log, so they too survive the next restart. *)
  let cutoff = Int64.add 1_700_000_000_000L 500_000L in
  let doomed = ref [] in
  Hyperion.Store.range store ~start:from (fun key _ ->
      if
        String.length key = 10
        && Bytes.get_uint16_be (Bytes.of_string key) 0 = sensor
        && Bytes.get_int64_be (Bytes.of_string key) 2 < cutoff
      then begin
        doomed := key :: !doomed;
        true
      end
      else false);
  List.iter (fun k -> ignore (or_die (Persist.delete p k))) !doomed;
  Printf.printf "phase 2: retention dropped %d samples; %d remain\n"
    (List.length !doomed)
    (Hyperion.Store.length store);
  or_die (Persist.close p);

  (* prove the retention outlived the process: reopen once more *)
  let p = or_die (Persist.open_or_create ~config dir) in
  Printf.printf "phase 3 (restart): %d samples — retention was durable\n"
    (Hyperion.Store.length (Persist.store p));
  or_die (Persist.close p)

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hyperion-iot" in
  (* fresh run each time: wipe any previous example state *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  phase1 dir;
  phase2 dir;
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end
