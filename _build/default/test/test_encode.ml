(* Record builders and suffix-chain encodings. *)

module E = Hyperion.Encode
module N = Hyperion.Node

let trie () = Hyperion.Ops.create { Hyperion.Config.default with chunks_per_bin = 64 }

let test_delta_for () =
  Alcotest.(check int) "no prev" 0 (E.delta_for ~prev_key:(-1) ~key:5);
  Alcotest.(check int) "gap 1" 1 (E.delta_for ~prev_key:4 ~key:5);
  Alcotest.(check int) "gap 7" 7 (E.delta_for ~prev_key:0 ~key:7);
  Alcotest.(check int) "gap 8 explicit" 0 (E.delta_for ~prev_key:0 ~key:8)

let test_record_sizes () =
  (* flag-only when delta-encoded and typeless of value *)
  Alcotest.(check int) "delta T inner = 1 byte" 1
    (String.length (E.t_record ~prev_key:1 ~key:3 ~typ:N.Inner ~value:None));
  Alcotest.(check int) "explicit T inner = 2 bytes" 2
    (String.length (E.t_record ~prev_key:(-1) ~key:3 ~typ:N.Inner ~value:None));
  Alcotest.(check int) "T with value = 10 bytes" 10
    (String.length
       (E.t_record ~prev_key:(-1) ~key:3 ~typ:N.Leaf_value ~value:(Some 7L)));
  Alcotest.(check int) "S head with child flag = 2" 2
    (String.length
       (E.s_record ~prev_key:(-1) ~key:9 ~typ:N.Inner ~value:None
          ~child:N.Child_hp));
  Alcotest.check_raises "type/value mismatch"
    (Invalid_argument "Encode: type / value mismatch") (fun () ->
      ignore (E.t_record ~prev_key:(-1) ~key:0 ~typ:N.Inner ~value:(Some 1L)))

let test_re_encode_head () =
  let rec_ = E.t_record ~prev_key:(-1) ~key:10 ~typ:N.Inner ~value:None in
  let buf = Bytes.of_string rec_ in
  (* explicit -> delta: shrinks one byte *)
  let frag, d = E.re_encode_head buf 0 ~key:10 ~new_prev:8 in
  Alcotest.(check int) "shrank" (-1) d;
  Alcotest.(check int) "frag 1 byte" 1 (String.length frag);
  Alcotest.(check int) "delta 2" 2 (N.delta_of_flag (Char.code frag.[0]));
  (* delta -> explicit: grows one byte *)
  let rec2 = E.t_record ~prev_key:8 ~key:10 ~typ:N.Inner ~value:None in
  let buf2 = Bytes.of_string rec2 in
  let frag2, d2 = E.re_encode_head buf2 0 ~key:10 ~new_prev:(-1) in
  Alcotest.(check int) "grew" 1 d2;
  Alcotest.(check string) "explicit key byte" "\n" (String.sub frag2 1 1)

let test_make_child_pc () =
  let t = trie () in
  let kind, body = E.make_child t "short" (Some 5L) in
  Alcotest.(check bool) "pc" true (kind = N.Child_pc);
  Alcotest.(check int) "pc size" (1 + 8 + 5) (String.length body)

let test_make_child_embedded () =
  let t = trie () in
  (* longer than pc_max (127) forces an embedded container *)
  let suffix = String.make 140 'x' in
  let kind, body = E.make_child t suffix (Some 5L) in
  Alcotest.(check bool) "embedded" true (kind = N.Child_embedded);
  Alcotest.(check int) "size byte consistent" (String.length body)
    (Char.code body.[0])

let test_make_child_real () =
  let t = trie () in
  (* way beyond the embedding budget: a real container chain is built (the
     top link may still be a small embedded wrapper around an HP) *)
  let suffix = String.init 2000 (fun i -> Char.chr (97 + (i mod 26))) in
  let kind, body = E.make_child t suffix (Some 5L) in
  Alcotest.(check bool) "not a PC" true (kind <> N.Child_pc);
  Alcotest.(check bool) "wrapper stays small" true (String.length body <= 256);
  (* end-to-end: a key with that suffix must round-trip through the trie *)
  let key = "kk" ^ suffix in
  ignore (Hyperion.Ops.put t key (Some 5L));
  Alcotest.(check bool) "long key retrievable" true
    (Hyperion.Ops.find t key = Some (Some 5L))

let prop_dry_matches_real =
  QCheck.Test.make ~name:"dry-run encodes the exact final length" ~count:100
    QCheck.(pair (string_gen_of_size (Gen.int_range 1 3000) Gen.printable) bool)
    (fun (suffix, has_value) ->
      QCheck.assume (String.length suffix >= 1);
      let t = trie () in
      let value = if has_value then Some 1L else None in
      let kind_dry, body_dry = E.make_child ~dry:true t suffix value in
      let kind, body = E.make_child t suffix value in
      kind_dry = kind && String.length body_dry = String.length body)

let () =
  Alcotest.run "encode"
    [
      ( "records",
        [
          Alcotest.test_case "delta_for" `Quick test_delta_for;
          Alcotest.test_case "record sizes" `Quick test_record_sizes;
          Alcotest.test_case "re_encode_head" `Quick test_re_encode_head;
        ] );
      ( "children",
        [
          Alcotest.test_case "pc" `Quick test_make_child_pc;
          Alcotest.test_case "embedded" `Quick test_make_child_embedded;
          Alcotest.test_case "real chain" `Quick test_make_child_real;
          QCheck_alcotest.to_alcotest prop_dry_matches_real;
        ] );
    ]
