(* Cross-structure integration: every store in the repository must agree
   on the same workloads — identical lookup answers and identical ordered
   iteration — since the benchmark harness compares them head to head. *)

type box = B : (module Kvcommon.Kv_intf.S with type t = 'a) * 'a -> box

let all_stores () : box list =
  let mk (type a) (module S : Kvcommon.Kv_intf.S with type t = a) =
    B ((module S), S.create ())
  in
  [
    B
      ( (module Hyperion_adapter : Kvcommon.Kv_intf.S
          with type t = Hyperion.Store.t),
        Hyperion_adapter.create () );
    mk (module Art);
    mk (module Judy);
    mk (module Hot);
    mk (module Hat);
    mk (module Rbtree);
  ]

and module_name (B ((module S), _)) = S.name

let put_all boxes k v = List.iter (fun (B ((module S), s)) -> S.put s k v) boxes
let delete_all boxes k = List.iter (fun (B ((module S), s)) -> ignore (S.delete s k)) boxes

let dump (B ((module S), s)) =
  let acc = ref [] in
  S.range s (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let test_agreement ~n ~seed keygen () =
  let boxes = all_stores () in
  let rng = Workload.Mt19937_64.create seed in
  for _ = 1 to n do
    let k = keygen rng in
    if Workload.Mt19937_64.next_below rng 10 < 8 then
      put_all boxes k (Workload.Mt19937_64.next_u64 rng)
    else delete_all boxes k
  done;
  match boxes with
  | [] -> assert false
  | reference :: rest ->
      let want = dump reference in
      List.iter
        (fun b ->
          let got = dump b in
          if got <> want then
            Alcotest.failf "%s disagrees with %s (%d vs %d entries)"
              (module_name b) (module_name reference) (List.length got)
              (List.length want))
        rest

let word rng =
  let n = 1 + Workload.Mt19937_64.next_below rng 16 in
  String.init n (fun _ -> Char.chr (97 + Workload.Mt19937_64.next_below rng 6))

let ngram_pick =
  let corpus = lazy (Workload.Ngram.generate ~n:2000 ()) in
  fun rng ->
    let c = Lazy.force corpus in
    fst c.(Workload.Mt19937_64.next_below rng (Array.length c))

let intkey rng =
  Kvcommon.Key_codec.of_u64
    (Int64.of_int (Workload.Mt19937_64.next_below rng 100000))

let test_dataset_consistency () =
  (* full data-set pass: counts and point lookups agree everywhere *)
  let ds = Workload.Dataset.ngrams_random 5000 in
  let boxes = all_stores () in
  Array.iter (fun (k, v) -> put_all boxes k v) ds.Workload.Dataset.pairs;
  List.iter
    (fun (B ((module S), s)) ->
      Alcotest.(check int) (S.name ^ " count") (Array.length ds.pairs) (S.length s);
      Array.iter
        (fun (k, v) ->
          if S.get s k <> Some v then Alcotest.failf "%s lost %S" S.name k)
        ds.Workload.Dataset.pairs)
    boxes

let () =
  Alcotest.run "integration"
    [
      ( "agreement",
        [
          Alcotest.test_case "words" `Slow (test_agreement ~n:4000 ~seed:50L word);
          Alcotest.test_case "ngrams" `Slow (test_agreement ~n:3000 ~seed:51L ngram_pick);
          Alcotest.test_case "ints" `Slow (test_agreement ~n:4000 ~seed:52L intkey);
          Alcotest.test_case "dataset consistency" `Slow test_dataset_consistency;
        ] );
    ]
