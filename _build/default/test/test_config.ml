(* Config validation: every documented domain constraint is enforced. *)

let base = Hyperion.Config.default

let rejects name cfg =
  Alcotest.test_case name `Quick (fun () ->
      match Hyperion.Config.validate cfg with
      | () -> Alcotest.failf "%s: expected rejection" name
      | exception Invalid_argument _ -> ())

let accepts name cfg =
  Alcotest.test_case name `Quick (fun () -> Hyperion.Config.validate cfg)

let () =
  Alcotest.run "config"
    [
      ( "accepts",
        [
          accepts "default" base;
          accepts "strings" Hyperion.Config.strings;
          accepts "max arenas" { base with arenas = 256 };
          accepts "min chunks_per_bin" { base with chunks_per_bin = 64 };
          accepts "pc_max bounds" { base with pc_max = 1 };
          accepts "tiny embedded" { base with embedded_max = 9 };
        ] );
      ( "rejects",
        [
          rejects "embedded_max too small" { base with embedded_max = 8 };
          rejects "embedded_max too large" { base with embedded_max = 257 };
          rejects "pc_max zero" { base with pc_max = 0 };
          rejects "pc_max > 127" { base with pc_max = 128 };
          rejects "eject limit tiny" { base with embedded_eject_parent_limit = 32 };
          rejects "js threshold zero" { base with js_threshold = 0 };
          rejects "js > jt threshold"
            { base with js_threshold = 50; tnode_jt_threshold = 10 };
          rejects "split_a tiny" { base with split_a = 64 };
          rejects "negative split_b" { base with split_b = -1 };
          rejects "chunks not multiple of 64" { base with chunks_per_bin = 100 };
          rejects "chunks too large" { base with chunks_per_bin = 8192 };
          rejects "zero arenas" { base with arenas = 0 };
          rejects "too many arenas" { base with arenas = 257 };
        ] );
    ]
