(* Engine-level model tests: every Hyperion operation compared against a
   Map-based reference under several configurations, including tiny
   thresholds that force embedded-container ejection, PC bursts, container
   splits and jump-table maintenance on nearly every operation. *)

module M = Map.Make (String)
module O = Hyperion.Ops

let default = { Hyperion.Config.default with chunks_per_bin = 64 }

let tiny =
  {
    default with
    embedded_eject_parent_limit = 256;
    embedded_max = 64;
    pc_max = 8;
    tnode_jt_threshold = 4;
    js_threshold = 2;
    container_jt_threshold = 2;
    split_a = 512;
    split_b = 256;
    split_min_piece = 64;
  }

let no_jumps =
  {
    default with
    js_threshold = 500_000;
    tnode_jt_threshold = 500_000;
    container_jt_threshold = 500_000;
  }

let no_delta = { default with delta_encoding = false }

(* ---- reference-model driver ---- *)

let check_valid trie ctx =
  match Hyperion.Validate.check trie with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: %d structural violations, first: %s" ctx
        (List.length errs)
        (Format.asprintf "%a" Hyperion.Validate.pp_error (List.hd errs))

let check_against_model trie model ctx =
  check_valid trie ctx;
  M.iter
    (fun k v ->
      match O.find trie k with
      | Some (Some got) when got = v -> ()
      | other ->
          Alcotest.failf "%s: key %S expected %Ld, got %s" ctx k v
            (match other with
            | None -> "absent"
            | Some None -> "valueless"
            | Some (Some g) -> Int64.to_string g))
    model;
  let got = ref [] in
  Hyperion.Range.range trie (fun k v ->
      got := (k, v) :: !got;
      true);
  let want = M.bindings model |> List.map (fun (k, v) -> (k, Some v)) in
  if List.rev !got <> want then
    Alcotest.failf "%s: range yielded %d keys, expected %d (or misordered)" ctx
      (List.length !got) (List.length want)

let run_model ~config ~n ~keygen ~seed ctx =
  let rng = Workload.Mt19937_64.create seed in
  let trie = O.create config in
  let model = ref M.empty in
  for i = 0 to n - 1 do
    let k = keygen rng in
    let op = Workload.Mt19937_64.next_below rng 10 in
    if op < 7 then begin
      let v = Workload.Mt19937_64.next_u64 rng in
      ignore (O.put trie k (Some v));
      model := M.add k v !model
    end
    else begin
      let removed = O.delete trie k in
      if removed <> M.mem k !model then
        Alcotest.failf "%s: delete %S returned %b" ctx k removed;
      model := M.remove k !model
    end;
    if i mod (max 1 (n / 6)) = 0 then check_against_model trie !model ctx
  done;
  check_against_model trie !model ctx

let word alphabet maxlen rng =
  let n = 1 + Workload.Mt19937_64.next_below rng maxlen in
  String.init n (fun _ ->
      Char.chr (97 + Workload.Mt19937_64.next_below rng alphabet))

let intkey bound rng =
  Kvcommon.Key_codec.of_u64
    (Int64.of_int (Workload.Mt19937_64.next_below rng bound))

let model_case name config keygen seed n =
  Alcotest.test_case name `Slow (fun () ->
      run_model ~config ~n ~keygen ~seed name)

(* ---- targeted scenarios ---- *)

let test_paper_words () =
  (* the running example of the paper's Figures 1-7 *)
  let trie = O.create default in
  let words = [ "a"; "and"; "be"; "by"; "that"; "the"; "to" ] in
  List.iteri (fun i w -> ignore (O.put trie w (Some (Int64.of_int i)))) words;
  List.iteri
    (fun i w ->
      Alcotest.(check bool)
        (w ^ " present") true
        (O.find trie w = Some (Some (Int64.of_int i))))
    words;
  Alcotest.(check (option (option int64))) "prefix not a member" None
    (O.find trie "b");
  Alcotest.(check (option (option int64))) "extension absent" None
    (O.find trie "thats")

let test_set_semantics () =
  let trie = O.create default in
  Alcotest.(check bool) "add new" true (O.put trie "member" None);
  Alcotest.(check (option (option int64))) "member without value"
    (Some None) (O.find trie "member");
  Alcotest.(check bool) "add again is not new" false (O.put trie "member" None);
  (* upgrade to valued (type 10 -> 11 transition, paper Section 3.1) *)
  Alcotest.(check bool) "upgrade not new" false (O.put trie "member" (Some 9L));
  Alcotest.(check (option (option int64))) "now valued" (Some (Some 9L))
    (O.find trie "member");
  Alcotest.(check bool) "delete" true (O.delete trie "member");
  Alcotest.(check (option (option int64))) "gone" None (O.find trie "member")

let test_value_overwrite_in_place () =
  let trie = O.create default in
  ignore (O.put trie "key" (Some 1L));
  ignore (O.put trie "key" (Some 2L));
  Alcotest.(check (option (option int64))) "overwritten" (Some (Some 2L))
    (O.find trie "key")

let test_pc_burst () =
  (* two keys sharing a long prefix force the recursive PC transformation *)
  let trie = O.create default in
  let a = "prefixprefixprefixAAA" and b = "prefixprefixprefixBBB" in
  ignore (O.put trie a (Some 1L));
  ignore (O.put trie b (Some 2L));
  Alcotest.(check bool) "a" true (O.find trie a = Some (Some 1L));
  Alcotest.(check bool) "b" true (O.find trie b = Some (Some 2L));
  (* a key that is a prefix of a stored PC suffix *)
  let c = "prefixprefixprefix" in
  ignore (O.put trie c (Some 3L));
  Alcotest.(check bool) "c" true (O.find trie c = Some (Some 3L));
  Alcotest.(check bool) "a still there" true (O.find trie a = Some (Some 1L))

let test_split_occurs () =
  (* tiny split thresholds: a few hundred spread-out keys must split the
     root container into chained extended bins *)
  let config = { tiny with embedded_eject_parent_limit = 128 } in
  let trie = O.create config in
  let keys = ref [] in
  for a = 0 to 255 do
    let k = Printf.sprintf "%c%c-suffix" (Char.chr a) (Char.chr (255 - a)) in
    keys := k :: !keys;
    ignore (O.put trie k (Some (Int64.of_int a)))
  done;
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check bool) "split containers exist" true
    (st.Hyperion.Stats.split_containers > 0);
  List.iter
    (fun k ->
      if O.find trie k = None then Alcotest.failf "lost %S after splits" k)
    !keys

let test_ejection_occurs () =
  let trie = O.create tiny in
  let rng = Workload.Mt19937_64.create 77L in
  for _ = 1 to 2000 do
    ignore (O.put trie (word 4 12 rng) (Some 1L))
  done;
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check bool) "containers multiplied by ejection" true
    (st.Hyperion.Stats.containers > 4)

let test_jumps_built () =
  let trie = O.create default in
  (* one T-node with 200 children: jump successor + T-node jump table *)
  for i = 0 to 199 do
    ignore (O.put trie (Printf.sprintf "a%c" (Char.chr i)) (Some (Int64.of_int i)))
  done;
  (* many T-nodes: container jump table (three-byte keys cannot collide
     with the two-byte keys above) *)
  for i = 0 to 199 do
    ignore (O.put trie (Printf.sprintf "%cxx" (Char.chr i)) (Some (Int64.of_int i)))
  done;
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check bool) "jump successors" true (st.Hyperion.Stats.jump_successors > 0);
  Alcotest.(check bool) "t-node jump tables" true
    (st.Hyperion.Stats.tnode_jump_tables > 0);
  Alcotest.(check bool) "container jump-table entries" true
    (st.Hyperion.Stats.container_jt_entries > 0);
  for i = 0 to 199 do
    Alcotest.(check bool) "lookup through jumps" true
      (O.find trie (Printf.sprintf "a%c" (Char.chr i))
      = Some (Some (Int64.of_int i)))
  done

let test_jumps_equal_no_jumps () =
  (* scanning with jump tables must visit exactly the same keys as without *)
  let rng = Workload.Mt19937_64.create 3L in
  let with_j = O.create default and without_j = O.create no_jumps in
  for _ = 1 to 3000 do
    let k = word 6 10 rng in
    let v = Workload.Mt19937_64.next_u64 rng in
    ignore (O.put with_j k (Some v));
    ignore (O.put without_j k (Some v))
  done;
  let collect trie =
    let acc = ref [] in
    Hyperion.Range.range trie (fun k v ->
        acc := (k, v) :: !acc;
        true);
    List.rev !acc
  in
  Alcotest.(check bool) "identical contents" true (collect with_j = collect without_j)

let test_long_keys () =
  let trie = O.create default in
  let k1 = String.init 5000 (fun i -> Char.chr (65 + (i mod 26))) in
  let k2 = String.sub k1 0 4999 ^ "!" in
  ignore (O.put trie k1 (Some 1L));
  ignore (O.put trie k2 (Some 2L));
  Alcotest.(check bool) "k1" true (O.find trie k1 = Some (Some 1L));
  Alcotest.(check bool) "k2" true (O.find trie k2 = Some (Some 2L));
  Alcotest.(check bool) "delete k1" true (O.delete trie k1);
  Alcotest.(check bool) "k2 survives" true (O.find trie k2 = Some (Some 2L))

let test_delete_to_empty () =
  let trie = O.create tiny in
  let rng = Workload.Mt19937_64.create 9L in
  let keys = List.init 500 (fun _ -> word 4 10 rng) in
  let uniq = List.sort_uniq compare keys in
  List.iter (fun k -> ignore (O.put trie k (Some 1L))) keys;
  List.iter (fun k -> Alcotest.(check bool) ("delete " ^ k) true (O.delete trie k)) uniq;
  Alcotest.(check bool) "root freed" true (Hyperion.Hp.is_null trie.Hyperion.Types.root);
  (* the allocator must be completely clean again *)
  let profile = Hyperion.Memman.superbin_profile trie.Hyperion.Types.mm in
  let live =
    Array.fold_left (fun a s -> a + s.Hyperion.Memman.allocated_chunks) 0 profile
  in
  Alcotest.(check int) "no leaked chunks" 0 live

let test_delta_density_sequential () =
  (* the paper: "The sequential nature allows all Hyperion nodes to delta
     encode the partial keys" — dense sequential keys must delta-encode
     nearly every sibling *)
  let trie = O.create default in
  for i = 0 to 4999 do
    ignore (O.put trie (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Some 1L))
  done;
  let st = Hyperion.Stats.collect trie in
  let records = st.Hyperion.Stats.t_nodes + st.Hyperion.Stats.s_nodes in
  let ratio = float_of_int st.Hyperion.Stats.delta_encoded /. float_of_int records in
  Alcotest.(check bool)
    (Printf.sprintf "delta ratio %.2f > 0.8 on dense keys" ratio)
    true (ratio > 0.8)

let test_set_value_mixing_vs_reference () =
  (* members without values and valued keys interleaved must agree with a
     two-map reference at every step *)
  let trie = O.create tiny in
  let valued = Hashtbl.create 64 and members = Hashtbl.create 64 in
  let rng = Workload.Mt19937_64.create 15L in
  for _ = 1 to 4000 do
    let k = word 4 8 rng in
    match Workload.Mt19937_64.next_below rng 4 with
    | 0 ->
        ignore (O.put trie k None);
        if not (Hashtbl.mem valued k) then Hashtbl.replace members k ()
    | 1 | 2 ->
        let v = Workload.Mt19937_64.next_u64 rng in
        ignore (O.put trie k (Some v));
        Hashtbl.replace valued k v;
        Hashtbl.remove members k
    | _ ->
        ignore (O.delete trie k);
        Hashtbl.remove valued k;
        Hashtbl.remove members k
  done;
  Hashtbl.iter
    (fun k v ->
      if O.find trie k <> Some (Some v) then Alcotest.failf "valued %S wrong" k)
    valued;
  Hashtbl.iter
    (fun k () ->
      if O.find trie k <> Some None then Alcotest.failf "member %S wrong" k)
    members;
  check_valid trie "set/value mixing"

let test_stats_consistency () =
  (* after any mix of valued puts, Stats terminal counts equal the live
     key population *)
  let trie = O.create tiny in
  let rng = Workload.Mt19937_64.create 13L in
  let live = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let k = word 4 10 rng in
    if Workload.Mt19937_64.next_below rng 4 = 0 then begin
      if Hashtbl.mem live k then Hashtbl.remove live k;
      ignore (O.delete trie k)
    end
    else begin
      Hashtbl.replace live k ();
      ignore (O.put trie k (Some 1L))
    end
  done;
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check int) "stats.values = live keys" (Hashtbl.length live)
    st.Hyperion.Stats.values;
  Alcotest.(check int) "no valueless members" 0
    st.Hyperion.Stats.members_without_value

let test_resplit () =
  (* splitting an already-split container adds slots to the same chained
     extended bin; keys must survive repeated splits *)
  let config = { tiny with split_a = 256; split_min_piece = 32 } in
  let trie = O.create config in
  let keys = ref [] in
  (* two-byte keys spread over the whole T range with fat payload chains *)
  for a = 0 to 255 do
    for b = 0 to 3 do
      let k = Printf.sprintf "%c%c tail-%d" (Char.chr a) (Char.chr (b * 64)) b in
      keys := k :: !keys;
      ignore (O.put trie k (Some (Int64.of_int ((a * 4) + b))))
    done
  done;
  List.iter
    (fun k -> if O.find trie k = None then Alcotest.failf "lost %S" k)
    !keys;
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check bool) "multiple split pieces" true
    (st.Hyperion.Stats.split_containers >= 1)

let test_empty_key_rejected () =
  let trie = O.create default in
  Alcotest.check_raises "empty key"
    (Invalid_argument "Hyperion: empty keys are not supported") (fun () ->
      ignore (O.put trie "" (Some 1L)))

let test_binary_keys () =
  (* keys containing 0x00 and 0xff bytes must work: the engine is 8-bit
     clean (zero bytes are valid partial keys, not terminators) *)
  let trie = O.create default in
  let keys = [ "\x00"; "\x00\x00"; "\x00\xff"; "\xff\x00\xff"; "\xff" ] in
  List.iteri (fun i k -> ignore (O.put trie k (Some (Int64.of_int i)))) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check bool) "binary key" true
        (O.find trie k = Some (Some (Int64.of_int i))))
    keys;
  let got = ref [] in
  Hyperion.Range.range trie (fun k _ ->
      got := k :: !got;
      true);
  Alcotest.(check (list string)) "binary order"
    [ "\x00"; "\x00\x00"; "\x00\xff"; "\xff"; "\xff\x00\xff" ]
    (List.rev !got)

let () =
  Alcotest.run "engine"
    [
      ( "scenarios",
        [
          Alcotest.test_case "paper words" `Quick test_paper_words;
          Alcotest.test_case "set semantics" `Quick test_set_semantics;
          Alcotest.test_case "overwrite in place" `Quick test_value_overwrite_in_place;
          Alcotest.test_case "pc burst" `Quick test_pc_burst;
          Alcotest.test_case "container split" `Quick test_split_occurs;
          Alcotest.test_case "embedded ejection" `Quick test_ejection_occurs;
          Alcotest.test_case "jump structures built" `Quick test_jumps_built;
          Alcotest.test_case "jumps vs no jumps" `Quick test_jumps_equal_no_jumps;
          Alcotest.test_case "long keys" `Quick test_long_keys;
          Alcotest.test_case "delete to empty frees all" `Quick test_delete_to_empty;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "delta density on dense keys" `Quick
            test_delta_density_sequential;
          Alcotest.test_case "set/value mixing" `Quick
            test_set_value_mixing_vs_reference;
          Alcotest.test_case "re-split" `Quick test_resplit;
          Alcotest.test_case "empty key rejected" `Quick test_empty_key_rejected;
          Alcotest.test_case "binary keys" `Quick test_binary_keys;
        ] );
      ( "model",
        [
          model_case "default/words" default (word 4 12) 1L 4000;
          model_case "default/long-words" default (word 3 200) 2L 1200;
          model_case "default/ints" default (intkey 5000) 3L 4000;
          model_case "tiny/words" tiny (word 4 12) 4L 4000;
          model_case "tiny/long-words" tiny (word 3 300) 5L 1200;
          model_case "tiny/ints" tiny (intkey 5000) 6L 4000;
          model_case "no-jumps/words" no_jumps (word 4 12) 7L 3000;
          model_case "no-delta/words" no_delta (word 4 12) 8L 3000;
          model_case "no-delta/ints" no_delta (intkey 5000) 9L 3000;
          model_case "soak/tiny-mixed" tiny
            (fun rng ->
              if Workload.Mt19937_64.next_below rng 2 = 0 then word 5 24 rng
              else intkey 20000 rng)
            10L 12000;
        ] );
    ]
