(* Hyperion Pointer codec (paper Fig. 9): field packing, byte round-trips,
   null handling. *)

let test_roundtrip () =
  let cases =
    [ (0, 0, 0, 0); (63, 16383, 255, 4095); (1, 2, 3, 4); (17, 9999, 128, 2048) ]
  in
  List.iter
    (fun (superbin, metabin, bin, chunk) ->
      let hp = Hyperion.Hp.make ~superbin ~metabin ~bin ~chunk in
      Alcotest.(check int) "superbin" superbin (Hyperion.Hp.superbin hp);
      Alcotest.(check int) "metabin" metabin (Hyperion.Hp.metabin hp);
      Alcotest.(check int) "bin" bin (Hyperion.Hp.bin hp);
      Alcotest.(check int) "chunk" chunk (Hyperion.Hp.chunk hp))
    cases

let test_null () =
  Alcotest.(check bool) "null is null" true (Hyperion.Hp.is_null Hyperion.Hp.null);
  let hp = Hyperion.Hp.make ~superbin:0 ~metabin:0 ~bin:0 ~chunk:1 in
  Alcotest.(check bool) "chunk 1 is not null" false (Hyperion.Hp.is_null hp)

let test_bytes_roundtrip () =
  let buf = Bytes.make 16 '\xff' in
  let hp = Hyperion.Hp.make ~superbin:42 ~metabin:1234 ~bin:56 ~chunk:789 in
  Hyperion.Hp.write buf 3 hp;
  Alcotest.(check int) "read back" hp (Hyperion.Hp.read buf 3);
  Alcotest.(check char) "byte before untouched" '\xff' (Bytes.get buf 2);
  Alcotest.(check char) "byte after untouched" '\xff' (Bytes.get buf 8)

let test_out_of_range () =
  Alcotest.check_raises "superbin too large"
    (Invalid_argument "Hp.make: superbin=64 out of 6-bit range") (fun () ->
      ignore (Hyperion.Hp.make ~superbin:64 ~metabin:0 ~bin:0 ~chunk:0));
  Alcotest.check_raises "negative chunk"
    (Invalid_argument "Hp.make: chunk=-1 out of 12-bit range") (fun () ->
      ignore (Hyperion.Hp.make ~superbin:0 ~metabin:0 ~bin:0 ~chunk:(-1)))

let prop_roundtrip =
  QCheck.Test.make ~name:"hp field/byte roundtrip" ~count:500
    QCheck.(quad (int_bound 63) (int_bound 16383) (int_bound 255) (int_bound 4095))
    (fun (superbin, metabin, bin, chunk) ->
      let hp = Hyperion.Hp.make ~superbin ~metabin ~bin ~chunk in
      let buf = Bytes.create 5 in
      Hyperion.Hp.write buf 0 hp;
      Hyperion.Hp.read buf 0 = hp
      && Hyperion.Hp.superbin hp = superbin
      && Hyperion.Hp.metabin hp = metabin
      && Hyperion.Hp.bin hp = bin
      && Hyperion.Hp.chunk hp = chunk)

let () =
  Alcotest.run "hp"
    [
      ( "codec",
        [
          Alcotest.test_case "field roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "null" `Quick test_null;
          Alcotest.test_case "byte roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "range checks" `Quick test_out_of_range;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
