(* Direct unit tests of the splice engine: tail shifts, zero fill,
   exact-fit resizing, and — most importantly — the offset-patching rules
   for jump successors and jump tables across a splice point (the paper's
   "minor drawback of this offset based jump approach is the necessity of
   updating the offset on insertions or deletions"). *)

module O = Hyperion.Ops
module T = Hyperion.Types
module L = Hyperion.Layout
module R = Hyperion.Records

let cfg = { Hyperion.Config.default with chunks_per_bin = 64 }

(* A fresh container holding the given record content, opened as a cbox. *)
let open_fresh content =
  let trie = O.create cfg in
  let hp = Hyperion.Splice.new_container trie content in
  trie.T.root <- hp;
  Hyperion.Splice.open_container trie hp ~tkey:0 ~where:T.W_root

let content cbox =
  let size = L.read_size cbox.T.buf cbox.T.base in
  let free = L.read_free cbox.T.buf cbox.T.base in
  Bytes.sub_string cbox.T.buf
    (cbox.T.base + L.payload_start cbox.T.buf cbox.T.base)
    (size - free - L.payload_start cbox.T.buf cbox.T.base)

(* Valid minimal record streams: terminal T-records with explicit keys
   (2 bytes each) — the patch pass parses the container on every splice,
   so content must always be well-formed. *)
let t_rec key =
  Hyperion.Encode.t_record ~prev_key:(-1) ~key:(Char.code key)
    ~typ:Hyperion.Node.Leaf_no_value ~value:None

let test_insert_shift () =
  let cbox = open_fresh (t_rec 'A' ^ t_rec 'Z') in
  let at = cbox.T.base + L.payload_start cbox.T.buf cbox.T.base + 2 in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at ~remove:0 ~ins:(t_rec 'M')
    ~keep_at:true;
  Alcotest.(check string) "inserted between records"
    (t_rec 'A' ^ t_rec 'M' ^ t_rec 'Z')
    (content cbox)

let test_remove_zeroes_tail () =
  let cbox = open_fresh (t_rec 'A' ^ t_rec 'M' ^ t_rec 'Z') in
  let p0 = cbox.T.base + L.payload_start cbox.T.buf cbox.T.base in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at:(p0 + 2) ~remove:2 ~ins:""
    ~keep_at:false;
  Alcotest.(check string) "removed" (t_rec 'A' ^ t_rec 'Z') (content cbox);
  (* vacated bytes must be zero *)
  let size = L.read_size cbox.T.buf cbox.T.base in
  let cend = size - L.read_free cbox.T.buf cbox.T.base in
  for i = cend to size - 1 do
    Alcotest.(check int) "zeroed" 0 (Bytes.get_uint8 cbox.T.buf (cbox.T.base + i))
  done

let test_growth_realloc () =
  let cbox = open_fresh (t_rec 'A') in
  let before = L.read_size cbox.T.buf cbox.T.base in
  (* append records until the container must grow across size classes *)
  for i = 1 to 60 do
    let at = cbox.T.base + L.content_end cbox.T.buf cbox.T.base in
    Hyperion.Splice.splice cbox ~emb_chain:[] ~at ~remove:0
      ~ins:
        (Hyperion.Encode.t_record ~prev_key:(-1) ~key:(65 + i)
           ~typ:Hyperion.Node.Leaf_no_value ~value:None)
      ~keep_at:true
  done;
  let after = L.read_size cbox.T.buf cbox.T.base in
  Alcotest.(check bool) "grew" true (after > before);
  Alcotest.(check int) "32-byte granular" 0 (after mod 32);
  Alcotest.(check int) "content size" (2 * 61)
    (String.length (content cbox));
  (* the root HP was re-pointed on reallocation *)
  Alcotest.(check bool) "root patched" true (cbox.T.hp = cbox.T.trie.T.root)

(* Build a real two-T container via the engine, then exercise the patch
   rules on its jump successor. *)
let build_two_t () =
  let trie = O.create cfg in
  (* T 'a' with enough children for a jump successor, then T 'b' *)
  for i = 0 to 9 do
    ignore (O.put trie (Printf.sprintf "a%c" (Char.chr (100 + i))) (Some 1L))
  done;
  ignore (O.put trie "bz" (Some 2L));
  let cbox =
    Hyperion.Splice.open_container trie trie.T.root ~tkey:(Char.code 'a')
      ~where:T.W_root
  in
  let region = T.top_region cbox.T.buf cbox.T.base in
  let t = R.parse_t cbox.T.buf region.T.rb ~prev_key:(-1) in
  Alcotest.(check bool) "has js" true (t.R.t_js_pos >= 0);
  (trie, cbox, region, t)

let js_target cbox =
  let region = T.top_region cbox.T.buf cbox.T.base in
  let t = R.parse_t cbox.T.buf region.T.rb ~prev_key:(-1) in
  t.R.t_pos + R.read_u16 cbox.T.buf t.R.t_js_pos

let test_js_patch_insert_before_target () =
  let _, cbox, _, t = build_two_t () in
  let target0 = js_target cbox in
  (* insert an S-record-sized blob inside T 'a''s children: js must shift *)
  let ins = Hyperion.Encode.s_record ~prev_key:(-1) ~key:1 ~typ:Hyperion.Node.Leaf_no_value
      ~value:None ~child:Hyperion.Node.No_child in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at:t.R.t_head_end ~remove:0 ~ins
    ~keep_at:false;
  Alcotest.(check int) "js target shifted by insert size"
    (target0 + String.length ins) (js_target cbox)

let test_js_patch_keep_at () =
  let _, cbox, _, _ = build_two_t () in
  let target0 = js_target cbox in
  (* keep_at insert AT the target (a new T sibling): js must keep pointing
     at the insertion point, i.e. at the new record *)
  let at = js_target cbox in
  let ins = Hyperion.Encode.t_record ~prev_key:(-1) ~key:(Char.code 'a' + 1)
      ~typ:Hyperion.Node.Leaf_no_value ~value:None in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at ~remove:0 ~ins ~keep_at:true;
  Alcotest.(check int) "js target unchanged (points at new sibling)" target0
    (js_target cbox)

let test_js_patch_no_keep_at () =
  let _, cbox, _, _ = build_two_t () in
  let target0 = js_target cbox in
  let at = js_target cbox in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at ~remove:0 ~ins:"\x06" (* S rec *)
    ~keep_at:false;
  Alcotest.(check int) "js target shifts past non-sibling insert"
    (target0 + 1) (js_target cbox)

let test_engine_after_manual_splices () =
  (* the engine must still answer correctly after the low-level exercises
     above (keys untouched by the splices) *)
  let trie, cbox, _, t = build_two_t () in
  let ins = Hyperion.Encode.s_record ~prev_key:(-1) ~key:1
      ~typ:Hyperion.Node.Leaf_no_value ~value:None ~child:Hyperion.Node.No_child in
  Hyperion.Splice.splice cbox ~emb_chain:[] ~at:t.R.t_head_end ~remove:0 ~ins
    ~keep_at:false;
  Alcotest.(check bool) "bz still reachable" true
    (O.find trie "bz" = Some (Some 2L))

let () =
  Alcotest.run "splice"
    [
      ( "basic",
        [
          Alcotest.test_case "insert shift" `Quick test_insert_shift;
          Alcotest.test_case "remove zeroes tail" `Quick test_remove_zeroes_tail;
          Alcotest.test_case "growth + realloc + repatch" `Quick test_growth_realloc;
        ] );
      ( "offset patching",
        [
          Alcotest.test_case "js shifts on insert before target" `Quick
            test_js_patch_insert_before_target;
          Alcotest.test_case "keep_at preserves sibling target" `Quick
            test_js_patch_keep_at;
          Alcotest.test_case "non-sibling insert shifts target" `Quick
            test_js_patch_no_keep_at;
          Alcotest.test_case "engine sane after manual splices" `Quick
            test_engine_after_manual_splices;
        ] );
    ]
