test/test_encode.ml: Alcotest Bytes Char Gen Hyperion QCheck QCheck_alcotest String
