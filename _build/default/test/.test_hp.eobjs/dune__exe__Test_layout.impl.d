test/test_layout.ml: Alcotest Bytes Char Hyperion QCheck QCheck_alcotest String
