test/test_othertries.ml: Alcotest Char Int32 Int64 Kvcommon List Map Othertries Printf String Workload
