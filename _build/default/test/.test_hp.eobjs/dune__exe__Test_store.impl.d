test/test_store.ml: Alcotest Array Char Gen Hashtbl Hyperion Int64 Kvcommon List Printf QCheck QCheck_alcotest String Thread Workload
