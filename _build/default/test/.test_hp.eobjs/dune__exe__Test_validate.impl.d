test/test_validate.ml: Alcotest Bytes Char Hyperion Int64 List Printf
