test/test_range.ml: Alcotest Char Gen Hashtbl Hyperion Int64 List Printf QCheck QCheck_alcotest String
