test/test_hp.ml: Alcotest Bytes Hyperion List QCheck QCheck_alcotest
