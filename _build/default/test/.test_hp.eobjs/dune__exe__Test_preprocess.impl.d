test/test_preprocess.ml: Alcotest Bytes Char Hashtbl Hyperion Kvcommon QCheck QCheck_alcotest String Workload
