test/test_workload.ml: Alcotest Array Fun Hashtbl Int64 Kvcommon List Printf QCheck QCheck_alcotest String Workload
