test/test_memman.ml: Alcotest Array Bytes Hyperion List Option Printf QCheck QCheck_alcotest
