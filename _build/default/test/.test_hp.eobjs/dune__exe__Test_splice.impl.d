test/test_splice.ml: Alcotest Bytes Char Hyperion Printf String
