test/test_bitset.ml: Alcotest Array Fun Hyperion List QCheck QCheck_alcotest
