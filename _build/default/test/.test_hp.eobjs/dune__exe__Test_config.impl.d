test/test_config.ml: Alcotest Hyperion
