test/test_memman.mli:
