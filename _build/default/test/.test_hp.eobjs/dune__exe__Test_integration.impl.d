test/test_integration.ml: Alcotest Array Art Char Hat Hot Hyperion Hyperion_adapter Int64 Judy Kvcommon Lazy List Rbtree String Workload
