test/test_engine.ml: Alcotest Array Char Format Hashtbl Hyperion Int64 Kvcommon List Map Printf String Workload
