test/test_config.mli:
