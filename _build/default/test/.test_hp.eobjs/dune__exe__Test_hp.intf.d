test/test_hp.mli:
