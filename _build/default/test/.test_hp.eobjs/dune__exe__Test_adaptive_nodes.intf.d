test/test_adaptive_nodes.mli:
