test/test_adaptive_nodes.ml: Alcotest Art Char Hat Hot Int64 Judy Kvcommon List Printf
