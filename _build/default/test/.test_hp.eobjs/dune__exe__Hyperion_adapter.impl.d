test/hyperion_adapter.ml: Hyperion
