test/test_othertries.mli:
