test/test_baselines.ml: Alcotest Art Char Hashkv Hat Hot Int64 Judy Kvcommon List Map Printf Rbtree String Workload
