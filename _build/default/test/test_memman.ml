(* The custom memory manager (paper Section 3.2): size classes, alloc/free
   bookkeeping, reallocation across classes, extended bins, chained
   extended bins, and accounting conservation. *)

module Mm = Hyperion.Memman
module Hp = Hyperion.Hp

let mk () = Mm.create ~chunks_per_bin:64 ()

let test_size_class () =
  Alcotest.(check int) "1 -> 32" 32 (Mm.size_class 1);
  Alcotest.(check int) "32" 32 (Mm.size_class 32);
  Alcotest.(check int) "33 -> 64" 64 (Mm.size_class 33);
  Alcotest.(check int) "small max" 2016 (Mm.size_class 2016);
  (* extended-bin rounding: 256 B steps to 8 KiB, 1 KiB to 16 KiB, 4 KiB after *)
  Alcotest.(check int) "2017 -> 2048" 2048 (Mm.size_class 2017);
  Alcotest.(check int) "8K stays" 8192 (Mm.size_class 8192);
  Alcotest.(check int) "8K+1 -> 9K" (9 * 1024) (Mm.size_class (8192 + 1));
  Alcotest.(check int) "16K+1 -> 20K" (20 * 1024) (Mm.size_class (16384 + 1));
  Alcotest.check_raises "zero" (Invalid_argument "Memman.size_class: non-positive request")
    (fun () -> ignore (Mm.size_class 0))

let test_alloc_resolve () =
  let mm = mk () in
  let hp = Mm.alloc mm 40 in
  Alcotest.(check bool) "not null" false (Hp.is_null hp);
  Alcotest.(check int) "capacity" 64 (Mm.capacity mm hp);
  let buf, off = Mm.resolve mm hp in
  (* zeroed on allocation *)
  for i = 0 to 63 do
    Alcotest.(check char) "zeroed" '\000' (Bytes.get buf (off + i))
  done;
  Bytes.set buf off 'x';
  let buf', off' = Mm.resolve mm hp in
  Alcotest.(check char) "persists" 'x' (Bytes.get buf' off')

let test_distinct_chunks () =
  let mm = mk () in
  let hps = List.init 200 (fun _ -> Mm.alloc mm 32) in
  (* all distinct *)
  let sorted = List.sort_uniq compare hps in
  Alcotest.(check int) "distinct HPs" 200 (List.length sorted);
  (* writes do not interfere *)
  List.iteri
    (fun i hp ->
      let buf, off = Mm.resolve mm hp in
      Bytes.set_uint8 buf off (i land 0xff))
    hps;
  List.iteri
    (fun i hp ->
      let buf, off = Mm.resolve mm hp in
      Alcotest.(check int) "own byte" (i land 0xff) (Bytes.get_uint8 buf off))
    hps

let test_free_reuse () =
  let mm = mk () in
  let hp1 = Mm.alloc mm 32 in
  Mm.free mm hp1;
  let hp2 = Mm.alloc mm 32 in
  Alcotest.(check int) "freed chunk reused" hp1 hp2;
  Alcotest.check_raises "double free" (Invalid_argument "Memman.free: double free")
    (fun () ->
      Mm.free mm hp2;
      Mm.free mm hp2)

let test_realloc_grow () =
  let mm = mk () in
  let hp = Mm.alloc mm 32 in
  let buf, off = Mm.resolve mm hp in
  Bytes.blit_string "hello" 0 buf off 5;
  let hp2 = Mm.realloc mm hp 200 in
  Alcotest.(check int) "new capacity" 224 (Mm.capacity mm hp2);
  let buf2, off2 = Mm.resolve mm hp2 in
  Alcotest.(check string) "content preserved" "hello" (Bytes.sub_string buf2 off2 5);
  Alcotest.(check char) "tail zeroed" '\000' (Bytes.get buf2 (off2 + 100));
  (* small -> extended -> small round trip *)
  let hp3 = Mm.realloc mm hp2 5000 in
  Alcotest.(check int) "ext superbin" 0 (Hp.superbin hp3);
  let buf3, off3 = Mm.resolve mm hp3 in
  Alcotest.(check string) "content preserved (ext)" "hello" (Bytes.sub_string buf3 off3 5);
  let hp4 = Mm.realloc mm hp3 64 in
  Alcotest.(check bool) "back to small" true (Hp.superbin hp4 > 0);
  let buf4, off4 = Mm.resolve mm hp4 in
  Alcotest.(check string) "content preserved (small)" "hello" (Bytes.sub_string buf4 off4 5)

let test_ext_realloc_keeps_hp () =
  let mm = mk () in
  let hp = Mm.alloc mm 4000 in
  Alcotest.(check int) "ext" 0 (Hp.superbin hp);
  let hp2 = Mm.realloc mm hp 12000 in
  Alcotest.(check int) "same HP after ext growth" hp hp2

let test_ceb () =
  let mm = mk () in
  let ceb = Mm.ceb_alloc mm in
  Alcotest.(check bool) "chained" true (Mm.is_chained mm ceb);
  Alcotest.(check bool) "plain alloc is not chained" false
    (Mm.is_chained mm (Mm.alloc mm 5000));
  Alcotest.(check (option int)) "slots start void" None
    (Option.map (fun (_, _, c) -> c) (Mm.ceb_slot mm ceb ~slot:3));
  Mm.ceb_set_slot mm ceb ~slot:0 100;
  Mm.ceb_set_slot mm ceb ~slot:5 3000;
  (match Mm.ceb_slot mm ceb ~slot:5 with
  | Some (_, _, cap) -> Alcotest.(check int) "slot capacity" 3072 cap
  | None -> Alcotest.fail "slot 5 missing");
  (* downward key resolution (paper Fig. 11: key 110 -> slot 0 when 1..3 void) *)
  Alcotest.(check int) "key 110 -> slot 0" 0 (Mm.ceb_resolve_key mm ceb ~tkey:110);
  Alcotest.(check int) "key 160 -> slot 5" 5 (Mm.ceb_resolve_key mm ceb ~tkey:160);
  Alcotest.(check int) "key 255 -> slot 5" 5 (Mm.ceb_resolve_key mm ceb ~tkey:255);
  Alcotest.(check int) "key 10 -> slot 0" 0 (Mm.ceb_resolve_key mm ceb ~tkey:10);
  (* slot contents survive slot reallocation *)
  (match Mm.ceb_slot mm ceb ~slot:5 with
  | Some (buf, off, _) -> Bytes.blit_string "world" 0 buf off 5
  | None -> assert false);
  Mm.ceb_realloc_slot mm ceb ~slot:5 9000;
  (match Mm.ceb_slot mm ceb ~slot:5 with
  | Some (buf, off, cap) ->
      Alcotest.(check string) "slot content preserved" "world" (Bytes.sub_string buf off 5);
      Alcotest.(check int) "slot grew" (9 * 1024) cap
  | None -> Alcotest.fail "slot 5 lost");
  Mm.ceb_clear_slot mm ceb ~slot:0;
  Alcotest.(check int) "after clearing slot 0, key 10 -> 5? no: scan down fails"
    5 (Mm.ceb_resolve_key mm ceb ~tkey:200);
  Mm.free mm ceb;
  Alcotest.(check bool) "freed ceb not chained" false (Mm.is_chained mm ceb)

let test_chained_errors () =
  let mm = mk () in
  let ceb = Mm.ceb_alloc mm in
  Alcotest.check_raises "capacity on CEB head"
    (Invalid_argument "Memman.capacity: not a plain allocation") (fun () ->
      ignore (Mm.capacity mm ceb));
  Alcotest.check_raises "resolve on CEB head"
    (Invalid_argument "Memman.resolve: not a plain allocation") (fun () ->
      ignore (Mm.resolve mm ceb));
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Memman: CEB slot out of range") (fun () ->
      ignore (Mm.ceb_slot mm ceb ~slot:8));
  Alcotest.check_raises "resolve key with all slots void"
    (Invalid_argument "Memman.ceb_resolve_key: no populated slot at or below key")
    (fun () -> ignore (Mm.ceb_resolve_key mm ceb ~tkey:128));
  Alcotest.check_raises "set populated slot"
    (Invalid_argument "Memman.ceb_set_slot: slot already populated") (fun () ->
      Mm.ceb_set_slot mm ceb ~slot:2 64;
      Mm.ceb_set_slot mm ceb ~slot:2 64)

let test_null_hp_errors () =
  let mm = mk () in
  Alcotest.check_raises "free null" (Invalid_argument "Memman.free: null HP")
    (fun () -> Mm.free mm Hp.null);
  Alcotest.check_raises "resolve null"
    (Invalid_argument "Memman.resolve: null HP") (fun () ->
      ignore (Mm.resolve mm Hp.null));
  (* the null chunk is reserved: allocations never return it *)
  let hps = List.init 70 (fun _ -> Mm.alloc mm 3000) in
  Alcotest.(check bool) "no allocation returns the null HP" true
    (List.for_all (fun hp -> not (Hp.is_null hp)) hps)

let test_accounting () =
  let mm = mk () in
  let hps = ref [] in
  for i = 1 to 500 do
    hps := Mm.alloc mm (1 + (i * 37 mod 2000)) :: !hps
  done;
  let profile = Mm.superbin_profile mm in
  let allocated = Array.fold_left (fun a s -> a + s.Mm.allocated_chunks) 0 profile in
  Alcotest.(check int) "allocated chunks" 500 allocated;
  Alcotest.(check int) "count agrees" 500 (Mm.allocated_chunk_count mm);
  (* allocated + empty covers whole initialized bins (small superbins) *)
  Array.iteri
    (fun i s ->
      if i > 0 && s.Mm.allocated_chunks > 0 then
        Alcotest.(check int)
          (Printf.sprintf "superbin %d conservation" i)
          0
          ((s.Mm.allocated_chunks + s.Mm.empty_chunks) mod 64))
    profile;
  (* free everything: no allocated chunks left *)
  List.iter (fun hp -> Mm.free mm hp) !hps;
  let profile = Mm.superbin_profile mm in
  let allocated = Array.fold_left (fun a s -> a + s.Mm.allocated_chunks) 0 profile in
  Alcotest.(check int) "all freed" 0 allocated;
  Alcotest.(check bool) "total_bytes still counts initialized bins" true
    (Mm.total_bytes mm > 0)

let prop_alloc_free =
  (* random alloc/free/realloc interleavings keep contents intact and
     accounting balanced *)
  QCheck.Test.make ~name:"memman random ops keep contents" ~count:60
    QCheck.(list (pair (int_range 1 6000) (int_bound 2)))
    (fun ops ->
      let mm = mk () in
      let live = ref [] in
      let tag = ref 0 in
      let check_one (hp, t, size) =
        let buf, off = Mm.resolve mm hp in
        Bytes.get_uint8 buf off = t land 0xff
        && Bytes.get_uint8 buf (off + min (size - 1) 31) = (t + 1) land 0xff
      in
      List.for_all
        (fun (size, action) ->
          let size = max 2 size in
          (* two distinct probe bytes need size >= 2; shrinkers may also
             escape int_range *)
          match action with
          | 0 ->
              incr tag;
              let hp = Mm.alloc mm size in
              let buf, off = Mm.resolve mm hp in
              Bytes.set_uint8 buf off (!tag land 0xff);
              Bytes.set_uint8 buf (off + min (size - 1) 31) ((!tag + 1) land 0xff);
              live := (hp, !tag, size) :: !live;
              true
          | 1 -> (
              match !live with
              | [] -> true
              | (hp, _, _) :: rest ->
                  Mm.free mm hp;
                  live := rest;
                  true)
          | _ -> (
              match !live with
              | [] -> true
              | (hp, t, s) :: rest ->
                  let ok_before = check_one (hp, t, s) in
                  let hp' = Mm.realloc mm hp (s + size) in
                  live := (hp', t, min s 32) :: rest;
                  ok_before && check_one (hp', t, min s 32)))
        ops
      && List.for_all check_one !live)

let () =
  Alcotest.run "memman"
    [
      ( "classes",
        [ Alcotest.test_case "size classes" `Quick test_size_class ] );
      ( "alloc",
        [
          Alcotest.test_case "alloc/resolve" `Quick test_alloc_resolve;
          Alcotest.test_case "distinct chunks" `Quick test_distinct_chunks;
          Alcotest.test_case "free & reuse" `Quick test_free_reuse;
          Alcotest.test_case "realloc growth" `Quick test_realloc_grow;
          Alcotest.test_case "ext realloc keeps HP" `Quick test_ext_realloc_keeps_hp;
        ] );
      ( "ceb",
        [
          Alcotest.test_case "chained extended bins" `Quick test_ceb;
          Alcotest.test_case "chained error paths" `Quick test_chained_errors;
          Alcotest.test_case "null HP handling" `Quick test_null_hp_errors;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "profile conservation" `Quick test_accounting;
          QCheck_alcotest.to_alcotest prop_alloc_free;
        ] );
    ]
