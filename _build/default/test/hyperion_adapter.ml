(* Hyperion's Store as a Kv_intf.S instance for the integration tests
   (bench_util has its own adapter; tests stay independent of it). *)

type t = Hyperion.Store.t

let name = "Hyperion"

let create () =
  Hyperion.Store.create
    ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
    ()

let put = Hyperion.Store.put
let get = Hyperion.Store.get
let mem = Hyperion.Store.mem
let delete = Hyperion.Store.delete
let range = Hyperion.Store.range
let length = Hyperion.Store.length
let memory_usage = Hyperion.Store.memory_usage
