(* The structural validator itself: a sound trie passes; deliberately
   corrupted byte arrays are caught.  (The validator guards every model
   test, so its own sensitivity matters.) *)

module O = Hyperion.Ops
module V = Hyperion.Validate

let cfg = { Hyperion.Config.default with chunks_per_bin = 64 }

let build words =
  let trie = O.create cfg in
  List.iteri (fun i w -> ignore (O.put trie w (Some (Int64.of_int i)))) words;
  trie

let test_sound () =
  let trie = build [ "a"; "and"; "be"; "by"; "that"; "the"; "to" ] in
  Alcotest.(check int) "no violations" 0 (List.length (V.check trie));
  let empty = O.create cfg in
  Alcotest.(check int) "empty trie valid" 0 (List.length (V.check empty))

let corrupt trie f =
  (* mutilate the root container's bytes *)
  let buf, base = Hyperion.Memman.resolve trie.Hyperion.Types.mm trie.Hyperion.Types.root in
  f buf base

let test_detects_nonzero_tail () =
  let trie = build [ "ab"; "cd" ] in
  corrupt trie (fun buf base ->
      let size = Hyperion.Layout.read_size buf base in
      Bytes.set_uint8 buf (base + size - 1) 0x55);
  Alcotest.(check bool) "tail corruption detected" true (V.check trie <> [])

let test_detects_order_violation () =
  let trie = build [ "ab"; "cd" ] in
  corrupt trie (fun buf base ->
      (* overwrite the first T-record's explicit key with a larger one *)
      let rb = base + Hyperion.Layout.payload_start buf base in
      Bytes.set_uint8 buf (rb + 1) 0xff);
  Alcotest.(check bool) "ordering violation detected" true (V.check trie <> [])

let test_detects_broken_js () =
  (* enough children to have a jump successor, then bend it *)
  let words = List.init 20 (fun i -> Printf.sprintf "a%c" (Char.chr (40 + i))) in
  let trie = build ("b" :: words) in
  let st = Hyperion.Stats.collect trie in
  Alcotest.(check bool) "js present" true (st.Hyperion.Stats.jump_successors > 0);
  corrupt trie (fun buf base ->
      let rb = base + Hyperion.Layout.payload_start buf base in
      let t = Hyperion.Records.parse_t buf rb ~prev_key:(-1) in
      Alcotest.(check bool) "first T has js" true (t.Hyperion.Records.t_js_pos >= 0);
      let off = Hyperion.Records.read_u16 buf t.Hyperion.Records.t_js_pos in
      Hyperion.Records.write_u16 buf t.Hyperion.Records.t_js_pos (off + 1));
  Alcotest.(check bool) "broken jump successor detected" true (V.check trie <> [])

let test_detects_bad_header () =
  let trie = build [ "hello" ] in
  corrupt trie (fun buf base ->
      Hyperion.Layout.set_size buf base (Hyperion.Layout.read_size buf base + 32));
  Alcotest.(check bool) "size beyond capacity detected" true (V.check trie <> [])

let test_check_store () =
  let s =
    Hyperion.Store.create ~config:{ cfg with arenas = 4 } ()
  in
  for i = 0 to 999 do
    Hyperion.Store.put s (Printf.sprintf "%04d" i) (Int64.of_int i)
  done;
  Alcotest.(check int) "store valid across arenas" 0
    (List.length (V.check_store s))

let () =
  Alcotest.run "validate"
    [
      ( "validator",
        [
          Alcotest.test_case "sound tries pass" `Quick test_sound;
          Alcotest.test_case "nonzero free tail" `Quick test_detects_nonzero_tail;
          Alcotest.test_case "key order violation" `Quick test_detects_order_violation;
          Alcotest.test_case "broken jump successor" `Quick test_detects_broken_js;
          Alcotest.test_case "header size overflow" `Quick test_detects_bad_header;
          Alcotest.test_case "check_store" `Quick test_check_store;
        ] );
    ]
