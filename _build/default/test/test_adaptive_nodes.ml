(* Adaptive node-layout transitions under deletion: ART must shrink
   Node256 -> Node48 -> Node16 -> Node4 and restore path compression;
   Judy must step back from uncompressed to bitmap to linear layouts.
   These reverse paths are rarely hit by random workloads, so they get
   dedicated coverage. *)

let key i = Printf.sprintf "p%c" (Char.chr i)

let test_art_shrink_chain () =
  let s = Art.create () in
  for i = 0 to 99 do
    Art.put s (key i) (Int64.of_int i)
  done;
  let _, _, _, n256 = Art.node_histogram s in
  Alcotest.(check bool) "node256 present at 100 children" true (n256 >= 1);
  (* shrink hysteresis: 256 -> 48 at <= 36 children *)
  for i = 36 to 99 do
    Alcotest.(check bool) "delete" true (Art.delete s (key i))
  done;
  let _, _, n48, n256 = Art.node_histogram s in
  Alcotest.(check int) "no node256" 0 n256;
  Alcotest.(check bool) "node48" true (n48 >= 1);
  (* 48 -> 16 at <= 12 *)
  for i = 12 to 35 do
    ignore (Art.delete s (key i))
  done;
  let _, n16, n48, _ = Art.node_histogram s in
  Alcotest.(check int) "no node48" 0 n48;
  Alcotest.(check bool) "node16" true (n16 >= 1);
  (* 16 -> 4 at <= 3; keep only keys 0 and 1 *)
  for i = 2 to 11 do
    ignore (Art.delete s (key i))
  done;
  let n4, n16, _, _ = Art.node_histogram s in
  Alcotest.(check int) "no node16" 0 n16;
  Alcotest.(check bool) "node4" true (n4 >= 1);
  (* survivors intact *)
  Alcotest.(check (option int64)) "key 0" (Some 0L) (Art.get s (key 0));
  Alcotest.(check (option int64)) "key 1" (Some 1L) (Art.get s (key 1));
  (* down to one key: the tree collapses to a leaf via path compression *)
  ignore (Art.delete s (key 1));
  Alcotest.(check (option int64)) "path-compressed survivor" (Some 0L)
    (Art.get s (key 0));
  Alcotest.(check int) "single key" 1 (Art.length s)

let test_art_prefix_restore () =
  (* deleting the splitter restores the merged compressed path *)
  let s = Art.create () in
  Art.put s "commonprefixAAA" 1L;
  Art.put s "commonprefixBBB" 2L;
  Art.put s "commonprefixAAAtail" 3L;
  Alcotest.(check bool) "del BBB" true (Art.delete s "commonprefixBBB");
  Alcotest.(check (option int64)) "AAA kept" (Some 1L) (Art.get s "commonprefixAAA");
  Alcotest.(check (option int64)) "AAAtail kept" (Some 3L)
    (Art.get s "commonprefixAAAtail");
  Alcotest.(check bool) "del AAA" true (Art.delete s "commonprefixAAA");
  Alcotest.(check (option int64)) "tail survives two merges" (Some 3L)
    (Art.get s "commonprefixAAAtail")

let test_judy_layout_cycle () =
  let s = Judy.create () in
  (* grow through linear (<=7) -> bitmap -> full (>187) *)
  for i = 0 to 220 do
    Judy.put s (key i) (Int64.of_int i)
  done;
  for i = 0 to 220 do
    if Judy.get s (key i) <> Some (Int64.of_int i) then
      Alcotest.failf "lost %d in full layout" i
  done;
  (* shrink back below every threshold *)
  for i = 5 to 220 do
    ignore (Judy.delete s (key i))
  done;
  for i = 0 to 4 do
    Alcotest.(check (option int64)) "linear again" (Some (Int64.of_int i))
      (Judy.get s (key i))
  done;
  (* memory shrinks with the relayout *)
  let m_small = Judy.memory_usage s in
  for i = 5 to 220 do
    Judy.put s (key i) (Int64.of_int i)
  done;
  Alcotest.(check bool) "full layout costs more" true
    (Judy.memory_usage s > m_small)

let test_hat_delete_inside_container () =
  let s = Hat.create () in
  for i = 0 to 499 do
    Hat.put s (Printf.sprintf "k%04d" i) (Int64.of_int i)
  done;
  (* delete every other key: records shift inside slot buffers *)
  for i = 0 to 499 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "del" true (Hat.delete s (Printf.sprintf "k%04d" i))
  done;
  for i = 0 to 499 do
    let expect = if i mod 2 = 0 then None else Some (Int64.of_int i) in
    if Hat.get s (Printf.sprintf "k%04d" i) <> expect then
      Alcotest.failf "slot shifting corrupted %d" i
  done

let test_hot_split_boundaries () =
  (* exact fan-out boundaries: 32, 33, 32*32, 32*32+1 keys *)
  List.iter
    (fun n ->
      let s = Hot.create () in
      for i = 0 to n - 1 do
        Hot.put s (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
      done;
      for i = 0 to n - 1 do
        if
          Hot.get s (Kvcommon.Key_codec.of_u64 (Int64.of_int i))
          <> Some (Int64.of_int i)
        then Alcotest.failf "n=%d lost %d" n i
      done;
      Alcotest.(check int) (Printf.sprintf "n=%d count" n) n (Hot.length s))
    [ 31; 32; 33; 1024; 1025 ]

let () =
  Alcotest.run "adaptive-nodes"
    [
      ( "art",
        [
          Alcotest.test_case "shrink chain 256->48->16->4" `Quick
            test_art_shrink_chain;
          Alcotest.test_case "path compression restore" `Quick
            test_art_prefix_restore;
        ] );
      ( "judy",
        [ Alcotest.test_case "layout grow/shrink cycle" `Quick test_judy_layout_cycle ] );
      ( "hat",
        [
          Alcotest.test_case "delete inside containers" `Quick
            test_hat_delete_inside_container;
        ] );
      ( "hot",
        [ Alcotest.test_case "split boundaries" `Quick test_hot_split_boundaries ] );
    ]
