(* The comparison data structures: each is driven against a Map-based
   reference model, plus structure-specific behaviours (ART node-type
   transitions, Judy layout adaptation, HAT bursting, HOT height, RB
   ordering, hash resizing). *)

module M = Map.Make (String)

module Model_check (S : Kvcommon.Kv_intf.S) = struct
  let run ~n ~seed ~keygen ctx =
    let rng = Workload.Mt19937_64.create seed in
    let s = S.create () in
    let model = ref M.empty in
    for i = 0 to n - 1 do
      let k = keygen rng in
      let op = Workload.Mt19937_64.next_below rng 10 in
      if op < 7 then begin
        let v = Workload.Mt19937_64.next_u64 rng in
        S.put s k v;
        model := M.add k v !model
      end
      else begin
        let removed = S.delete s k in
        if removed <> M.mem k !model then
          Alcotest.failf "%s: delete %S -> %b" ctx k removed;
        model := M.remove k !model
      end;
      if i mod (max 1 (n / 5)) = 0 || i = n - 1 then begin
        M.iter
          (fun k v ->
            match S.get s k with
            | Some got when got = v -> ()
            | _ -> Alcotest.failf "%s@%d: key %S wrong" ctx i k)
          !model;
        if S.length s <> M.cardinal !model then Alcotest.failf "%s: length" ctx;
        let got = ref [] in
        S.range s (fun k v ->
            got := (k, v) :: !got;
            true);
        if List.rev !got <> (M.bindings !model |> List.map (fun (k, v) -> (k, Some v)))
        then Alcotest.failf "%s@%d: range mismatch" ctx i
      end
    done

  let case name keygen seed n =
    Alcotest.test_case name `Slow (fun () -> run ~n ~seed ~keygen name)
end

let word alphabet maxlen rng =
  let n = 1 + Workload.Mt19937_64.next_below rng maxlen in
  String.init n (fun _ ->
      Char.chr (97 + Workload.Mt19937_64.next_below rng alphabet))

let intkey bound rng =
  Kvcommon.Key_codec.of_u64
    (Int64.of_int (Workload.Mt19937_64.next_below rng bound))

let binkey rng =
  let n = 1 + Workload.Mt19937_64.next_below rng 10 in
  String.init n (fun _ -> Char.chr (Workload.Mt19937_64.next_below rng 256))

module CA = Model_check (Art)
module CJ = Model_check (Judy)
module CH = Model_check (Hot)
module CT = Model_check (Hat)
module CR = Model_check (Rbtree)
module CK = Model_check (Hashkv)

(* ---- structure-specific behaviours ---- *)

let test_art_node_transitions () =
  let s = Art.create () in
  let hist () = Art.node_histogram s in
  (* 0..3 children under one byte: a single Node4 *)
  for i = 0 to 3 do
    Art.put s (Printf.sprintf "k%c" (Char.chr i)) 1L
  done;
  let n4, _, _, _ = hist () in
  Alcotest.(check bool) "node4 exists" true (n4 >= 1);
  for i = 4 to 16 do
    Art.put s (Printf.sprintf "k%c" (Char.chr i)) 1L
  done;
  let _, _, n48, _ = hist () in
  Alcotest.(check bool) "node48 after 17 children" true (n48 >= 1);
  for i = 17 to 60 do
    Art.put s (Printf.sprintf "k%c" (Char.chr i)) 1L
  done;
  let _, _, _, n256 = hist () in
  Alcotest.(check bool) "node256 after 49+ children" true (n256 >= 1);
  (* memory models are ordered: Opt <= Ext *)
  Alcotest.(check bool) "ARTopt <= ART" true
    (Art.memory_usage_model s Art.Opt <= Art.memory_usage_model s Art.Ext)

let test_hat_burst () =
  let s = Hat.create () in
  let n = Hat.burst_threshold + 100 in
  for i = 0 to n - 1 do
    Hat.put s (Printf.sprintf "k%08d" i) (Int64.of_int i)
  done;
  Alcotest.(check int) "all present" n (Hat.length s);
  for i = 0 to n - 1 do
    if Hat.get s (Printf.sprintf "k%08d" i) <> Some (Int64.of_int i) then
      Alcotest.failf "key %d lost across burst" i
  done

let test_hot_height () =
  let s = Hot.create () in
  for i = 0 to 9999 do
    Hot.put s (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) 1L
  done;
  (* fan-out 32 => height ~ log32(10000/32) + 1 *)
  Alcotest.(check bool) "height small" true (Hot.height s <= 4)

let test_rb_ordered () =
  let s = Rbtree.create () in
  let rng = Workload.Mt19937_64.create 11L in
  for _ = 1 to 5000 do
    Rbtree.put s (word 26 12 rng) 1L
  done;
  let prev = ref "" and ok = ref true and first = ref true in
  Rbtree.range s (fun k _ ->
      if (not !first) && String.compare !prev k >= 0 then ok := false;
      first := false;
      prev := k;
      true);
  Alcotest.(check bool) "in-order traversal" true !ok

let test_hash_growth () =
  let s = Hashkv.create () in
  for i = 0 to 99_999 do
    Hashkv.put s (string_of_int i) (Int64.of_int i)
  done;
  Alcotest.(check int) "survives many rehashes" 100_000 (Hashkv.length s);
  Alcotest.(check (option int64)) "spot" (Some 54321L) (Hashkv.get s "54321")

let test_memory_sanity () =
  (* the paper's qualitative ordering on random small keys: every index
     must report nonzero memory that grows with population *)
  let checks : (string * (unit -> int * int)) list =
    let two (type a) (module S : Kvcommon.Kv_intf.S with type t = a) =
      let s = S.create () in
      for i = 0 to 99 do
        S.put s (Printf.sprintf "%06d" i) 1L
      done;
      let m1 = S.memory_usage s in
      for i = 100 to 9999 do
        S.put s (Printf.sprintf "%06d" i) 1L
      done;
      (m1, S.memory_usage s)
    in
    [
      ("art", fun () -> two (module Art));
      ("judy", fun () -> two (module Judy));
      ("hot", fun () -> two (module Hot));
      ("hat", fun () -> two (module Hat));
      ("rb", fun () -> two (module Rbtree));
      ("hash", fun () -> two (module Hashkv));
    ]
  in
  List.iter
    (fun (name, f) ->
      let m1, m2 = f () in
      if not (m1 > 0 && m2 > m1) then
        Alcotest.failf "%s memory accounting implausible (%d -> %d)" name m1 m2)
    checks

let () =
  Alcotest.run "baselines"
    [
      ( "model/art",
        [
          CA.case "words" (word 4 12) 21L 6000;
          CA.case "ints" (intkey 5000) 22L 6000;
          CA.case "binary" binkey 23L 4000;
        ] );
      ( "model/judy",
        [
          CJ.case "words" (word 4 12) 24L 6000;
          CJ.case "ints" (intkey 5000) 25L 6000;
          CJ.case "binary" binkey 26L 4000;
        ] );
      ( "model/hot",
        [
          CH.case "words" (word 4 12) 27L 6000;
          CH.case "ints" (intkey 5000) 28L 6000;
          CH.case "binary" binkey 29L 4000;
        ] );
      ( "model/hat",
        [
          CT.case "words" (word 4 12) 30L 6000;
          CT.case "ints" (intkey 5000) 31L 6000;
          CT.case "binary" binkey 32L 4000;
        ] );
      ( "model/rb",
        [
          CR.case "words" (word 4 12) 33L 6000;
          CR.case "ints" (intkey 5000) 34L 6000;
          CR.case "binary" binkey 35L 4000;
        ] );
      ( "model/hash",
        [
          CK.case "words" (word 4 12) 36L 6000;
          CK.case "ints" (intkey 5000) 37L 6000;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "art node transitions" `Quick test_art_node_transitions;
          Alcotest.test_case "hat burst" `Quick test_hat_burst;
          Alcotest.test_case "hot height" `Quick test_hot_height;
          Alcotest.test_case "rb ordering" `Quick test_rb_ordered;
          Alcotest.test_case "hash growth" `Quick test_hash_growth;
          Alcotest.test_case "memory sanity" `Quick test_memory_sanity;
        ] );
    ]
