(* Bin bitmaps: set/clear/count, first-free search, consecutive runs (used
   to place chained extended bins). *)

let test_basic () =
  let b = Hyperion.Bitset.create 100 in
  Alcotest.(check int) "empty count" 0 (Hyperion.Bitset.count_set b);
  Hyperion.Bitset.set b 0;
  Hyperion.Bitset.set b 63;
  Hyperion.Bitset.set b 64;
  Hyperion.Bitset.set b 99;
  Alcotest.(check int) "count" 4 (Hyperion.Bitset.count_set b);
  Alcotest.(check bool) "mem 63" true (Hyperion.Bitset.mem b 63);
  Alcotest.(check bool) "mem 62" false (Hyperion.Bitset.mem b 62);
  Hyperion.Bitset.set b 63;
  Alcotest.(check int) "count unchanged" 4 (Hyperion.Bitset.count_set b);
  Hyperion.Bitset.clear b 63;
  Alcotest.(check int) "count after clear" 3 (Hyperion.Bitset.count_set b);
  Hyperion.Bitset.clear b 63;
  Alcotest.(check int) "count idempotent" 3 (Hyperion.Bitset.count_set b)

let test_find_clear () =
  let b = Hyperion.Bitset.create 130 in
  for i = 0 to 129 do
    Hyperion.Bitset.set b i
  done;
  Alcotest.(check (option int)) "full" None (Hyperion.Bitset.find_clear b);
  Hyperion.Bitset.clear b 127;
  Alcotest.(check (option int)) "127" (Some 127) (Hyperion.Bitset.find_clear b);
  Hyperion.Bitset.clear b 5;
  Alcotest.(check (option int)) "lowest wins" (Some 5) (Hyperion.Bitset.find_clear b)

let test_find_run () =
  let b = Hyperion.Bitset.create 64 in
  for i = 0 to 63 do
    Hyperion.Bitset.set b i
  done;
  for i = 20 to 26 do
    Hyperion.Bitset.clear b i
  done;
  Alcotest.(check (option int)) "7 < 8" None (Hyperion.Bitset.find_clear_run b 8);
  Hyperion.Bitset.clear b 27;
  Alcotest.(check (option int)) "run of 8" (Some 20) (Hyperion.Bitset.find_clear_run b 8);
  Alcotest.(check (option int)) "run of 3" (Some 20) (Hyperion.Bitset.find_clear_run b 3)

let prop_model =
  QCheck.Test.make ~name:"bitset vs bool-array model" ~count:200
    QCheck.(list (pair (int_bound 199) bool))
    (fun ops ->
      let b = Hyperion.Bitset.create 200 in
      let m = Array.make 200 false in
      List.iter
        (fun (i, set) ->
          if set then begin
            Hyperion.Bitset.set b i;
            m.(i) <- true
          end
          else begin
            Hyperion.Bitset.clear b i;
            m.(i) <- false
          end)
        ops;
      let count_ok =
        Hyperion.Bitset.count_set b
        = Array.fold_left (fun a x -> if x then a + 1 else a) 0 m
      in
      let find_ok =
        Hyperion.Bitset.find_clear b
        = (let rec go i =
             if i >= 200 then None else if not m.(i) then Some i else go (i + 1)
           in
           go 0)
      in
      let mem_ok =
        Array.for_all Fun.id
          (Array.init 200 (fun i -> Hyperion.Bitset.mem b i = m.(i)))
      in
      count_ok && find_ok && mem_ok)

let () =
  Alcotest.run "bitset"
    [
      ( "ops",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "find_clear" `Quick test_find_clear;
          Alcotest.test_case "find_clear_run" `Quick test_find_run;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
    ]
