(* The paper's Section 2.3 structures kept as reference baselines: burst
   trie (Section 2.2), GPT and KISS-tree.  Same model-based discipline as
   the main comparison set, plus their structure-specific constraints. *)

module M = Map.Make (String)

module Model_check (S : Kvcommon.Kv_intf.S) = struct
  let run ~n ~seed ~keygen ctx =
    let rng = Workload.Mt19937_64.create seed in
    let s = S.create () in
    let model = ref M.empty in
    for i = 0 to n - 1 do
      let k = keygen rng in
      let op = Workload.Mt19937_64.next_below rng 10 in
      if op < 7 then begin
        let v = Workload.Mt19937_64.next_u64 rng in
        S.put s k v;
        model := M.add k v !model
      end
      else begin
        let removed = S.delete s k in
        if removed <> M.mem k !model then
          Alcotest.failf "%s: delete %S -> %b" ctx k removed;
        model := M.remove k !model
      end;
      if i mod (max 1 (n / 4)) = 0 || i = n - 1 then begin
        M.iter
          (fun k v ->
            match S.get s k with
            | Some got when got = v -> ()
            | _ -> Alcotest.failf "%s@%d: key %S wrong" ctx i k)
          !model;
        if S.length s <> M.cardinal !model then Alcotest.failf "%s: length" ctx;
        let got = ref [] in
        S.range s (fun k v ->
            got := (k, v) :: !got;
            true);
        if
          List.rev !got
          <> (M.bindings !model |> List.map (fun (k, v) -> (k, Some v)))
        then Alcotest.failf "%s@%d: range mismatch" ctx i
      end
    done

  let case name keygen seed n =
    Alcotest.test_case name `Slow (fun () -> run ~n ~seed ~keygen name)
end

let word rng =
  let n = 1 + Workload.Mt19937_64.next_below rng 12 in
  String.init n (fun _ -> Char.chr (97 + Workload.Mt19937_64.next_below rng 4))

let key32 rng =
  Kvcommon.Key_codec.of_u32
    (Int32.of_int (Workload.Mt19937_64.next_below rng 500_000))

module CB = Model_check (Othertries.Burst_trie)
module CG = Model_check (Othertries.Gpt)
module CK = Model_check (Othertries.Kiss_tree)

let test_burst_bursts () =
  let s = Othertries.Burst_trie.create () in
  let n = Othertries.Burst_trie.burst_threshold * 3 in
  for i = 0 to n - 1 do
    Othertries.Burst_trie.put s (Printf.sprintf "%06d" i) (Int64.of_int i)
  done;
  for i = 0 to n - 1 do
    if Othertries.Burst_trie.get s (Printf.sprintf "%06d" i) <> Some (Int64.of_int i)
    then Alcotest.failf "lost %d across bursts" i
  done

let test_gpt_nodes_grow_only () =
  let s = Othertries.Gpt.create () in
  Othertries.Gpt.put s "abc" 1L;
  let n1 = Othertries.Gpt.node_count s in
  ignore (Othertries.Gpt.delete s "abc");
  Alcotest.(check int) "segments never shrink (GPT design)" n1
    (Othertries.Gpt.node_count s);
  Alcotest.(check int) "but the key is gone" 0 (Othertries.Gpt.length s)

let test_kiss_fixed_width () =
  let s = Othertries.Kiss_tree.create () in
  Alcotest.check_raises "32-bit keys only"
    (Invalid_argument "Kiss_tree: keys must be exactly 4 bytes (32-bit)")
    (fun () -> Othertries.Kiss_tree.put s "abcde" 1L);
  (* dense leaf fill: all 64 fragments of one third-level node *)
  for i = 0 to 63 do
    Othertries.Kiss_tree.put s
      (Kvcommon.Key_codec.of_u32 (Int32.of_int i))
      (Int64.of_int i)
  done;
  for i = 0 to 63 do
    Alcotest.(check (option int64)) "leaf entry"
      (Some (Int64.of_int i))
      (Othertries.Kiss_tree.get s (Kvcommon.Key_codec.of_u32 (Int32.of_int i)))
  done;
  Alcotest.(check int) "count" 64 (Othertries.Kiss_tree.length s)

let test_kiss_range_order () =
  let s = Othertries.Kiss_tree.create () in
  let rng = Workload.Mt19937_64.create 91L in
  for _ = 1 to 5000 do
    Othertries.Kiss_tree.put s (key32 rng) 1L
  done;
  let prev = ref "" and first = ref true and ok = ref true in
  Othertries.Kiss_tree.range s (fun k _ ->
      if (not !first) && String.compare !prev k >= 0 then ok := false;
      first := false;
      prev := k;
      true);
  Alcotest.(check bool) "ordered" true !ok

let () =
  Alcotest.run "othertries"
    [
      ( "model",
        [
          CB.case "burst words" word 61L 5000;
          CG.case "gpt words" word 62L 5000;
          CK.case "kiss 32-bit" key32 63L 5000;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "burst trie bursts" `Quick test_burst_bursts;
          Alcotest.test_case "gpt grow-only segments" `Quick test_gpt_nodes_grow_only;
          Alcotest.test_case "kiss fixed width" `Quick test_kiss_fixed_width;
          Alcotest.test_case "kiss range order" `Quick test_kiss_range_order;
        ] );
    ]
