(* Range-query semantics at the engine level, under configurations that
   force the traversal across split containers, embedded containers and
   path-compressed suffixes — with random lower bounds (the code path a
   store-level property found a real bug in). *)

module O = Hyperion.Ops

let tiny =
  {
    Hyperion.Config.default with
    chunks_per_bin = 64;
    embedded_eject_parent_limit = 256;
    embedded_max = 64;
    pc_max = 8;
    tnode_jt_threshold = 4;
    js_threshold = 2;
    container_jt_threshold = 2;
    split_a = 512;
    split_b = 256;
    split_min_piece = 64;
  }

let collect trie ?start () =
  let acc = ref [] in
  Hyperion.Range.range trie ?start (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let test_full_traversal_orders () =
  (* identical key sets inserted in different orders traverse identically *)
  let keys = List.init 300 (fun i -> Printf.sprintf "%03x-k" i) in
  let a = O.create tiny and b = O.create tiny in
  let v k = Int64.of_int (Hashtbl.hash k) in
  List.iter (fun k -> ignore (O.put a k (Some (v k)))) keys;
  List.iter (fun k -> ignore (O.put b k (Some (v k)))) (List.rev keys);
  Alcotest.(check bool) "order-independent structure contents" true
    (collect a () = collect b ())

let test_bounds_at_every_key () =
  let trie = O.create tiny in
  let keys =
    List.sort_uniq compare
      (List.init 200 (fun i ->
           Printf.sprintf "%c%c%s"
             (Char.chr (97 + (i mod 7)))
             (Char.chr (97 + (i / 7 mod 5)))
             (String.make (i mod 11) 'z')))
  in
  List.iteri (fun i k -> ignore (O.put trie k (Some (Int64.of_int i)))) keys;
  (* for every stored key k: range from k starts exactly at k; range from
     k ^ "\x00" starts strictly after k *)
  List.iter
    (fun k ->
      (match collect trie ~start:k () with
      | (first, _) :: _ when first = k -> ()
      | (first, _) :: _ -> Alcotest.failf "start %S yielded %S" k first
      | [] -> Alcotest.failf "start %S yielded nothing" k);
      match collect trie ~start:(k ^ "\x00") () with
      | (first, _) :: _ when first > k -> ()
      | (first, _) :: _ -> Alcotest.failf "start past %S yielded %S" k first
      | [] -> () (* k was the largest key *))
    keys

let test_early_stop_counts () =
  let trie = O.create tiny in
  for i = 0 to 999 do
    ignore (O.put trie (Printf.sprintf "%04d" i) (Some (Int64.of_int i)))
  done;
  List.iter
    (fun limit ->
      let seen = ref 0 in
      Hyperion.Range.range trie (fun _ _ ->
          incr seen;
          !seen < limit);
      Alcotest.(check int) (Printf.sprintf "stop after %d" limit) limit !seen)
    [ 1; 2; 17; 500; 1000 ]

let prop_bound_filter =
  QCheck.Test.make ~name:"engine range ?start = sorted filter" ~count:40
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 150)
           (string_gen_of_size (Gen.int_range 1 10)
              (Gen.char_range 'a' 'f')))
        (string_gen_of_size (Gen.int_range 0 10) (Gen.char_range 'a' 'f')))
    (fun (keys, start) ->
      let keys = List.filter (fun k -> k <> "") keys in
      let trie = O.create tiny in
      List.iteri (fun i k -> ignore (O.put trie k (Some (Int64.of_int i)))) keys;
      let got = List.map fst (collect trie ~start ()) in
      let want =
        List.sort_uniq String.compare keys
        |> List.filter (fun k -> String.compare k start >= 0)
      in
      got = want)

let () =
  Alcotest.run "range"
    [
      ( "traversal",
        [
          Alcotest.test_case "order independence" `Quick test_full_traversal_orders;
          Alcotest.test_case "bounds at every key" `Quick test_bounds_at_every_key;
          Alcotest.test_case "early stop" `Quick test_early_stop_counts;
          QCheck_alcotest.to_alcotest prop_bound_filter;
        ] );
    ]
