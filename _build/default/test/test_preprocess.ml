(* Key pre-processing (paper Section 3.4, Fig. 12): zero-bit injection is
   injective, invertible and order-preserving; transformed keys grow by
   exactly one byte and carry zeroes in the low bits of bytes 2-5. *)

module P = Hyperion.Preprocess

let test_basic () =
  let k = "\x12\x34\x56\x78\x9a" in
  let e = P.encode k in
  Alcotest.(check int) "grows by one byte" (String.length k + 1) (String.length e);
  Alcotest.(check char) "first byte unchanged" k.[0] e.[0];
  for i = 1 to 4 do
    Alcotest.(check int) "low bits zero" 0 (Char.code e.[i] land 0b11)
  done;
  Alcotest.(check char) "tail copied" '\x9a' e.[5];
  Alcotest.(check string) "roundtrip" k (P.decode e)

let test_errors () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Preprocess.encode: keys must be >= 4 bytes") (fun () ->
      ignore (P.encode "abc"));
  Alcotest.check_raises "bad decode"
    (Invalid_argument "Preprocess.decode: low bits of bytes 2-5 must be zero")
    (fun () -> ignore (P.decode "\x00\x01\x00\x00\x00"))

let key_gen =
  QCheck.Gen.(map Bytes.unsafe_to_string (bytes_size (int_range 4 24)))

let prop_roundtrip =
  QCheck.Test.make ~name:"decode . encode = id" ~count:1000
    (QCheck.make key_gen)
    (fun k -> P.decode (P.encode k) = k)

let prop_order =
  QCheck.Test.make ~name:"binary-comparable order preserved" ~count:1000
    QCheck.(pair (make key_gen) (make key_gen))
    (fun (a, b) ->
      compare (String.compare a b > 0) (String.compare (P.encode a) (P.encode b) > 0) = 0
      && compare (String.compare a b = 0)
           (String.compare (P.encode a) (P.encode b) = 0)
         = 0)

let prop_u64_order =
  (* the paper's use case: uniformly random 64-bit integers *)
  QCheck.Test.make ~name:"u64 keys keep numeric order" ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let ka = Kvcommon.Key_codec.of_u64 a and kb = Kvcommon.Key_codec.of_u64 b in
      let cmp_raw = String.compare ka kb in
      let cmp_pp = String.compare (P.encode ka) (P.encode kb) in
      compare (cmp_raw > 0) (cmp_pp > 0) = 0 && compare (cmp_raw = 0) (cmp_pp = 0) = 0)

let test_third_level_reduction () =
  (* the transformation packs the first 4 key bytes into 5 bytes holding
     26 data bits in the first 4 (2^26 third-level containers, paper) *)
  let distinct = Hashtbl.create 64 in
  let rng = Workload.Mt19937_64.create 1L in
  for _ = 1 to 1000 do
    let k = Kvcommon.Key_codec.of_u64 (Workload.Mt19937_64.next_u64 rng) in
    let e = P.encode k in
    Hashtbl.replace distinct (String.sub e 0 4) ()
  done;
  Alcotest.(check bool) "prefixes collide less than full entropy" true
    (Hashtbl.length distinct <= 1000)

let () =
  Alcotest.run "preprocess"
    [
      ( "codec",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "third-level reduction" `Quick test_third_level_reduction;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_order;
          QCheck_alcotest.to_alcotest prop_u64_order;
        ] );
    ]
