(* Workload substrate: MT19937-64 reference vectors, Zipf sampling, the
   synthetic n-gram corpus and data-set construction. *)

let test_mt_reference () =
  (* Reference outputs of the Matsumoto & Nishimura mt19937-64.c for
     init_genrand64(5489). *)
  let rng = Workload.Mt19937_64.create 5489L in
  let expected =
    [ "14514284786278117030"; "4620546740167642908"; "13109570281517897720" ]
  in
  List.iter
    (fun want ->
      let got = Printf.sprintf "%Lu" (Workload.Mt19937_64.next_u64 rng) in
      Alcotest.(check string) "mt19937-64 vector" want got)
    expected

let test_mt_determinism () =
  let a = Workload.Mt19937_64.create 42L and b = Workload.Mt19937_64.create 42L in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream"
      (Workload.Mt19937_64.next_u64 a)
      (Workload.Mt19937_64.next_u64 b)
  done

let test_next_below () =
  let rng = Workload.Mt19937_64.create 7L in
  for _ = 1 to 10000 do
    let v = Workload.Mt19937_64.next_below rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_shuffle_permutation () =
  let rng = Workload.Mt19937_64.create 8L in
  let a = Array.init 100 Fun.id in
  Workload.Mt19937_64.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_zipf () =
  let z = Workload.Zipf.create ~n:1000 ~s:1.1 in
  let rng = Workload.Mt19937_64.create 9L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0 must dominate rank 100 heavily *)
  Alcotest.(check bool) "skew" true (counts.(0) > 10 * max 1 counts.(100));
  Alcotest.(check bool) "support covered" true (Array.exists (fun c -> c > 0) counts)

let test_ngram_corpus () =
  let pairs = Workload.Ngram.generate ~n:5000 () in
  Alcotest.(check int) "count" 5000 (Array.length pairs);
  let seen = Hashtbl.create 5000 in
  Array.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then Alcotest.failf "duplicate key %S" k;
      Hashtbl.add seen k ();
      (* shape: words separated by spaces, tab, 4-digit year *)
      let tab = String.index k '\t' in
      Alcotest.(check int) "year suffix" 4 (String.length k - tab - 1))
    pairs;
  let avg = Workload.Ngram.average_key_length pairs in
  Alcotest.(check bool)
    (Printf.sprintf "avg key len %.1f close to the paper's 22.65" avg)
    true
    (avg > 15.0 && avg < 35.0);
  (* determinism *)
  let again = Workload.Ngram.generate ~n:5000 () in
  Alcotest.(check bool) "reproducible" true (pairs = again)

let test_datasets () =
  let seq = Workload.Dataset.seq_ints 1000 in
  Alcotest.(check int) "seq size" 1000 (Array.length seq.Workload.Dataset.pairs);
  let sorted = Array.copy seq.Workload.Dataset.pairs in
  Array.sort compare sorted;
  Alcotest.(check bool) "seq_ints sorted by construction" true
    (sorted = seq.Workload.Dataset.pairs);
  let rand = Workload.Dataset.rand_ints 1000 in
  let keys = Array.map fst rand.Workload.Dataset.pairs in
  let uniq = Array.to_list keys |> List.sort_uniq compare in
  Alcotest.(check int) "distinct random keys" 1000 (List.length uniq);
  Array.iter
    (fun (k, v) ->
      Alcotest.(check int64) "key encodes value" v (Kvcommon.Key_codec.to_u64 k))
    rand.Workload.Dataset.pairs;
  let s = Workload.Dataset.ngrams_sorted 500 in
  let shuffled = Workload.Dataset.shuffled s in
  Alcotest.(check bool) "shuffle keeps multiset" true
    (List.sort compare (Array.to_list shuffled.Workload.Dataset.pairs)
    = List.sort compare (Array.to_list s.Workload.Dataset.pairs))

let test_key_codec () =
  Alcotest.(check string) "u64 big-endian" "\x00\x00\x00\x00\x00\x00\x01\x02"
    (Kvcommon.Key_codec.of_u64 258L);
  Alcotest.(check int64) "roundtrip" (-1L)
    (Kvcommon.Key_codec.to_u64 (Kvcommon.Key_codec.of_u64 (-1L)));
  (* signed order via sign-bit flip *)
  let a = Kvcommon.Key_codec.of_i64 (-5L) and b = Kvcommon.Key_codec.of_i64 3L in
  Alcotest.(check bool) "signed order" true (String.compare a b < 0);
  Alcotest.(check string) "reverse" "cba" (Kvcommon.Key_codec.reverse_bytes "abc")

let prop_u64_order =
  QCheck.Test.make ~name:"of_u64 is binary-comparable (unsigned)" ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let cmp_num = Int64.unsigned_compare a b in
      let cmp_str =
        String.compare (Kvcommon.Key_codec.of_u64 a) (Kvcommon.Key_codec.of_u64 b)
      in
      compare (cmp_num > 0) (cmp_str > 0) = 0
      && compare (cmp_num = 0) (cmp_str = 0) = 0)

let () =
  Alcotest.run "workload"
    [
      ( "mt19937-64",
        [
          Alcotest.test_case "reference vectors" `Quick test_mt_reference;
          Alcotest.test_case "determinism" `Quick test_mt_determinism;
          Alcotest.test_case "next_below" `Quick test_next_below;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ("zipf", [ Alcotest.test_case "skew" `Quick test_zipf ]);
      ( "corpus",
        [
          Alcotest.test_case "ngram corpus" `Quick test_ngram_corpus;
          Alcotest.test_case "datasets" `Quick test_datasets;
        ] );
      ( "key codec",
        [
          Alcotest.test_case "codecs" `Quick test_key_codec;
          QCheck_alcotest.to_alcotest prop_u64_order;
        ] );
    ]
