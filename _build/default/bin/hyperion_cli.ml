(* hyperion_cli — interactive / scripted driver for a Hyperion store.

   Subcommands:
     demo           load the paper's example words and dump the trie stats
     load-ints N    insert N sequential integers and report density
     load-ngrams N  insert N synthetic n-grams and report density
     repl           read commands from stdin:
                      put <key> <value> | add <key> | get <key>
                      del <key> | range <start> <limit> | stats | quit *)

open Cmdliner

let make_store () =
  Hyperion.Store.create
    ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
    ()

let report store =
  let st = Hyperion.Store.stats store in
  Printf.printf "keys           : %d\n" (Hyperion.Store.length store);
  Printf.printf "resident bytes : %d (%.1f B/key)\n"
    (Hyperion.Store.memory_usage store)
    (float_of_int (Hyperion.Store.memory_usage store)
    /. float_of_int (max 1 (Hyperion.Store.length store)));
  Printf.printf "containers     : %d (+%d embedded, %d split)\n"
    st.Hyperion.Stats.containers st.Hyperion.Stats.embedded_containers
    st.Hyperion.Stats.split_containers;
  Printf.printf "records        : %d T, %d S, %d delta-encoded\n"
    st.Hyperion.Stats.t_nodes st.Hyperion.Stats.s_nodes
    st.Hyperion.Stats.delta_encoded;
  Printf.printf "path compr.    : %d nodes, %d suffix bytes\n"
    st.Hyperion.Stats.pc_nodes st.Hyperion.Stats.pc_suffix_bytes

let demo () =
  let store = make_store () in
  List.iteri
    (fun i w -> Hyperion.Store.put store w (Int64.of_int i))
    [ "a"; "and"; "be"; "by"; "that"; "the"; "to" ];
  Hyperion.Store.range store (fun k v ->
      Printf.printf "%-6s -> %s\n" k
        (match v with Some v -> Int64.to_string v | None -> "(member)");
      true);
  report store

let load_ints n =
  let store = make_store () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Hyperion.Store.put store (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
  done;
  Printf.printf "inserted %d sequential integers in %.2fs\n" n
    (Unix.gettimeofday () -. t0);
  report store

let load_ngrams n =
  let store = make_store () in
  let pairs = Workload.Ngram.generate ~n () in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs;
  Printf.printf "inserted %d n-grams in %.2fs\n" n (Unix.gettimeofday () -. t0);
  report store

let repl () =
  let store = make_store () in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "quit" ] -> ()
        | [ "stats" ] ->
            report store;
            loop ()
        | [ "put"; k; v ] ->
            Hyperion.Store.put store k (Int64.of_string v);
            loop ()
        | [ "add"; k ] ->
            Hyperion.Store.add store k;
            loop ()
        | [ "get"; k ] ->
            (match Hyperion.Store.get store k with
            | Some v -> Printf.printf "%Ld\n" v
            | None ->
                print_endline
                  (if Hyperion.Store.mem store k then "(member)" else "(nil)"));
            loop ()
        | [ "del"; k ] ->
            Printf.printf "%b\n" (Hyperion.Store.delete store k);
            loop ()
        | [ "range"; start; limit ] ->
            let n = ref (int_of_string limit) in
            Hyperion.Store.range store ~start (fun k v ->
                Printf.printf "%s %s\n" k
                  (match v with Some v -> Int64.to_string v | None -> "-");
                decr n;
                !n > 0);
            loop ()
        | [ "" ] -> loop ()
        | _ ->
            print_endline "put|add|get|del|range|stats|quit";
            loop ())
  in
  loop ()

let n_arg = Arg.(value & pos 0 int 100_000 & info [] ~docv:"N")

let cmds =
  [
    Cmd.v (Cmd.info "demo" ~doc:"Paper example words") Term.(const demo $ const ());
    Cmd.v (Cmd.info "load-ints" ~doc:"Sequential integer load") Term.(const load_ints $ n_arg);
    Cmd.v (Cmd.info "load-ngrams" ~doc:"Synthetic n-gram load") Term.(const load_ngrams $ n_arg);
    Cmd.v (Cmd.info "repl" ~doc:"Line-oriented REPL on stdin") Term.(const repl $ const ());
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hyperion_cli" ~version:"1.0.0"
             ~doc:"Hyperion in-memory search tree CLI")
          cmds))
