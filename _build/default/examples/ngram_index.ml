(* The paper's headline workload: indexing a Google-Books-style n-gram
   corpus as a key-value store (Section 4.3), here with the synthetic
   corpus from the workload library.

   Keys are "<words>\t<year>", values pack (book count, occurrences).

   Run with:  dune exec examples/ngram_index.exe [n] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  Printf.printf "generating %d n-grams...\n%!" n;
  let corpus = Workload.Ngram.generate ~n () in

  (* The paper's string configuration: 16 KiB ejection limit exploits path
     compression on long shared prefixes. *)
  let store =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
      ()
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun (key, value) -> Hyperion.Store.put store key value) corpus;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "indexed %d n-grams in %.2fs (%.2f Mops)\n" n dt
    (float_of_int n /. dt /. 1e6);

  let mem = Hyperion.Store.memory_usage store in
  Printf.printf "resident: %.1f MiB (%.1f B/key, avg key %.1f B + 8 B value)\n"
    (float_of_int mem /. 1048576.)
    (float_of_int mem /. float_of_int n)
    (Workload.Ngram.average_key_length corpus);

  (* Prefix analytics: all entries for one word prefix. *)
  let prefix = String.sub (fst corpus.(0)) 0 3 in
  let hits = ref 0 and occurrences = ref 0L in
  Hyperion.Store.prefix_iter store ~prefix (fun _key value ->
      incr hits;
      (match value with
      | Some v ->
          occurrences := Int64.add !occurrences (Int64.logand v 0xFFFFFFFFFFFL)
      | None -> ());
      true);
  Printf.printf "prefix %S: %d n-grams, %Ld total occurrences\n" prefix !hits
    !occurrences;

  (* How much the trie compressed the keys (paper Section 4.3). *)
  let st = Hyperion.Store.stats store in
  Printf.printf
    "delta-encoded records: %d, embedded containers: %d, path-compressed bytes: %d\n"
    st.Hyperion.Stats.delta_encoded st.Hyperion.Stats.embedded_containers
    st.Hyperion.Stats.pc_suffix_bytes
