(* Long-key indexing (paper Section 1: "potentially arbitrarily long keys
   becoming necessary, e.g., for future DNA sequencing techniques").

   Index every k-mer (k = 64) of a synthetic genome fragment, mapping it
   to its position; then look sequences up and enumerate k-mers sharing a
   seed prefix.  Exercises path compression and the nested-container chain
   for keys beyond the 127-byte PC limit using full reads (k = 512).

   Run with:  dune exec examples/dna_index.exe *)

let bases = [| 'A'; 'C'; 'G'; 'T' |]

let () =
  let rng = Workload.Mt19937_64.create 4L in
  let genome =
    String.init 20_000 (fun _ -> bases.(Workload.Mt19937_64.next_below rng 4))
  in
  let store =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
      ()
  in

  (* 64-mers with positions *)
  let k = 64 in
  for pos = 0 to String.length genome - k do
    let kmer = String.sub genome pos k in
    (* first occurrence wins *)
    if not (Hyperion.Store.mem store kmer) then
      Hyperion.Store.put store kmer (Int64.of_int pos)
  done;
  Printf.printf "indexed %d distinct %d-mers of a %d bp genome\n"
    (Hyperion.Store.length store) k (String.length genome);
  Printf.printf "resident: %.2f MiB\n"
    (float_of_int (Hyperion.Store.memory_usage store) /. 1048576.);

  (* exact lookup of a read drawn from the genome *)
  let pos = 4242 in
  let read = String.sub genome pos k in
  (match Hyperion.Store.get store read with
  | Some p -> Printf.printf "read maps to position %Ld\n" p
  | None -> print_endline "read not found (unexpected)");

  (* seed-and-extend: enumerate k-mers sharing a 12 bp seed *)
  let seed = String.sub genome 100 12 in
  let hits = ref 0 in
  Hyperion.Store.prefix_iter store ~prefix:seed (fun _ _ ->
      incr hits;
      true);
  Printf.printf "%d k-mers share seed %s\n" !hits seed;

  (* very long keys: whole reads of 512 bp stored directly *)
  let reads = 1000 and rlen = 512 in
  let long_store =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
      ()
  in
  for i = 0 to reads - 1 do
    let p = Workload.Mt19937_64.next_below rng (String.length genome - rlen) in
    Hyperion.Store.put long_store (String.sub genome p rlen) (Int64.of_int i)
  done;
  Printf.printf "stored %d reads of %d bp each; resident %.2f MiB\n"
    (Hyperion.Store.length long_store) rlen
    (float_of_int (Hyperion.Store.memory_usage long_store) /. 1048576.);
  print_endline "dna_index OK"
