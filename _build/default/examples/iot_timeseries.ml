(* IoT time-series indexing (paper Section 1: traffic time series on edge
   devices with limited memory).

   Keys: sensor id (2 bytes) ^ timestamp (8 bytes, big-endian) — so a range
   query over one sensor's window is a contiguous key interval.  Values:
   the measurement.  Arenas give thread-safe ingest.

   Run with:  dune exec examples/iot_timeseries.exe *)

let sensor_key ~sensor ~ts =
  let b = Bytes.create 10 in
  Bytes.set_uint16_be b 0 sensor;
  Bytes.set_int64_be b 2 ts;
  Bytes.unsafe_to_string b

let () =
  let store =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.default with arenas = 4; chunks_per_bin = 64 }
      ()
  in
  let rng = Workload.Mt19937_64.create 2026L in
  let sensors = 64 and samples = 5000 in

  (* Ingest: interleaved sensors, monotone timestamps with jitter. *)
  let ts = Array.make sensors 1_700_000_000_000L in
  for _ = 1 to samples do
    for s = 0 to sensors - 1 do
      ts.(s) <-
        Int64.add ts.(s) (Int64.of_int (500 + Workload.Mt19937_64.next_below rng 1000));
      let measurement = Int64.of_int (Workload.Mt19937_64.next_below rng 10_000) in
      Hyperion.Store.put store (sensor_key ~sensor:s ~ts:ts.(s)) measurement
    done
  done;
  Printf.printf "ingested %d samples from %d sensors\n"
    (Hyperion.Store.length store) sensors;
  Printf.printf "resident: %.2f MiB (%.1f B/sample)\n"
    (float_of_int (Hyperion.Store.memory_usage store) /. 1048576.)
    (float_of_int (Hyperion.Store.memory_usage store)
    /. float_of_int (Hyperion.Store.length store));

  (* Window query: sensor 17, first 1000 samples' worth of time. *)
  let sensor = 17 in
  let from = sensor_key ~sensor ~ts:0L in
  let count = ref 0 and sum = ref 0L in
  Hyperion.Store.range store ~start:from (fun key value ->
      (* stop at the next sensor's key space *)
      if String.length key >= 2 && Bytes.get_uint16_be (Bytes.of_string key) 0 = sensor
      then begin
        incr count;
        (match value with Some v -> sum := Int64.add !sum v | None -> ());
        true
      end
      else false);
  Printf.printf "sensor %d: %d samples, mean measurement %.1f\n" sensor !count
    (Int64.to_float !sum /. float_of_int (max 1 !count));

  (* Retention: drop everything older than a cutoff for sensor 17. *)
  let cutoff = Int64.add 1_700_000_000_000L 1_000_000L in
  let doomed = ref [] in
  Hyperion.Store.range store ~start:from (fun key _ ->
      if
        String.length key = 10
        && Bytes.get_uint16_be (Bytes.of_string key) 0 = sensor
        && Bytes.get_int64_be (Bytes.of_string key) 2 < cutoff
      then begin
        doomed := key :: !doomed;
        true
      end
      else false);
  List.iter (fun k -> ignore (Hyperion.Store.delete store k)) !doomed;
  Printf.printf "retention dropped %d samples; %d remain\n" (List.length !doomed)
    (Hyperion.Store.length store)
