(* Quickstart: the Hyperion public API in two minutes.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A store with default thresholds; bins scaled to a laptop demo (the
     server default is chunks_per_bin = 4096). *)
  let store =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.default with chunks_per_bin = 64 }
      ()
  in

  (* Point operations: arbitrary binary keys, 64-bit values. *)
  Hyperion.Store.put store "greeting" 1L;
  Hyperion.Store.put store "greetings" 2L;
  Hyperion.Store.put store "grove" 3L;
  assert (Hyperion.Store.get store "greeting" = Some 1L);
  assert (Hyperion.Store.get store "missing" = None);

  (* Keys can also be stored without a value (set semantics, the paper's
     type-10 terminals). *)
  Hyperion.Store.add store "flag";
  assert (Hyperion.Store.mem store "flag");
  assert (Hyperion.Store.get store "flag" = None);

  (* Integer keys become binary-comparable strings via Key_codec. *)
  for i = 0 to 99 do
    Hyperion.Store.put store (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
  done;

  (* Ordered range queries with a callback; return false to stop. *)
  print_endline "string keys >= \"g\":";
  Hyperion.Store.range store ~start:"g" (fun key value ->
      Printf.printf "  %S -> %s\n" key
        (match value with Some v -> Int64.to_string v | None -> "(member)");
      true);

  (* Deletion reclaims container space. *)
  assert (Hyperion.Store.delete store "grove");
  assert (not (Hyperion.Store.mem store "grove"));

  (* Introspection: exact allocator-level memory and trie statistics. *)
  Printf.printf "keys: %d, resident: %d bytes\n"
    (Hyperion.Store.length store)
    (Hyperion.Store.memory_usage store);
  let st = Hyperion.Store.stats store in
  Printf.printf "containers: %d, delta-encoded records: %d, PC nodes: %d\n"
    st.Hyperion.Stats.containers st.Hyperion.Stats.delta_encoded
    st.Hyperion.Stats.pc_nodes;
  print_endline "quickstart OK"
