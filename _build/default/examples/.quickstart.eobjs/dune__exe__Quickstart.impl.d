examples/quickstart.ml: Hyperion Int64 Kvcommon Printf
