examples/quickstart.mli:
