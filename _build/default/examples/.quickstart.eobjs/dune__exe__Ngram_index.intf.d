examples/ngram_index.mli:
