examples/iot_timeseries.mli:
