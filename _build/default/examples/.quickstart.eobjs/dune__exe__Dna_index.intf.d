examples/dna_index.mli:
