examples/ngram_index.ml: Array Hyperion Int64 Printf String Sys Unix Workload
