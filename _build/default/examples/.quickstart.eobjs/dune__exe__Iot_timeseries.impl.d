examples/iot_timeseries.ml: Array Bytes Hyperion Int64 List Printf String Workload
