examples/dna_index.ml: Array Hyperion Int64 Printf String Workload
