let fanout = 32

(* Compound nodes: leaves hold up to [fanout] (key, value) entries sorted
   by key; internal nodes hold children separated by discriminative
   boundary keys.  Splits cut at the median boundary, which is exactly the
   effect of HOT's span adaptation: every node keeps a high fan-out
   independent of how sparse the key space is. *)
type leaf = { mutable lkeys : string array; mutable lvals : int64 array; mutable ln : int }

type node = L of leaf | I of inner

and inner = { mutable seps : string array; mutable kids : node array; mutable kn : int }
(* kn children, kn-1 separators; child i holds keys < seps.(i) *)

type t = { mutable root : node; mutable count : int; mutable key_bytes : int }

let name = "HOT"

let new_leaf () =
  { lkeys = Array.make fanout ""; lvals = Array.make fanout 0L; ln = 0 }

let create () = { root = L (new_leaf ()); count = 0; key_bytes = 0 }

(* First index in [a.(0..n-1)] with a.(i) >= key (binary search — the
   scalar stand-in for HOT's SIMD partial-key match). *)
let lower_bound a n key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare a.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index for [key] in an internal node. *)
let child_index seps kn key =
  let lo = ref 0 and hi = ref (kn - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare key seps.(mid) < 0 then hi := mid else lo := mid + 1
  done;
  !lo

let rec search node key =
  match node with
  | L l ->
      let i = lower_bound l.lkeys l.ln key in
      if i < l.ln && l.lkeys.(i) = key then Some l.lvals.(i) else None
  | I n -> search n.kids.(child_index n.seps n.kn key) key

let get t key = if t.count = 0 then None else search t.root key
let mem t key = get t key <> None

(* Insert; returns Some (boundary, right_sibling) when the node split. *)
let rec insert t node key value =
  match node with
  | L l ->
      let i = lower_bound l.lkeys l.ln key in
      if i < l.ln && l.lkeys.(i) = key then begin
        l.lvals.(i) <- value;
        None
      end
      else begin
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        if l.ln < fanout then begin
          Array.blit l.lkeys i l.lkeys (i + 1) (l.ln - i);
          Array.blit l.lvals i l.lvals (i + 1) (l.ln - i);
          l.lkeys.(i) <- key;
          l.lvals.(i) <- value;
          l.ln <- l.ln + 1;
          None
        end
        else begin
          (* split at the median discriminative boundary *)
          let mid = fanout / 2 in
          let right = new_leaf () in
          Array.blit l.lkeys mid right.lkeys 0 (fanout - mid);
          Array.blit l.lvals mid right.lvals 0 (fanout - mid);
          right.ln <- fanout - mid;
          l.ln <- mid;
          Array.fill l.lkeys mid (fanout - mid) "";
          let target = if String.compare key right.lkeys.(0) < 0 then l else right in
          let j = lower_bound target.lkeys target.ln key in
          Array.blit target.lkeys j target.lkeys (j + 1) (target.ln - j);
          Array.blit target.lvals j target.lvals (j + 1) (target.ln - j);
          target.lkeys.(j) <- key;
          target.lvals.(j) <- value;
          target.ln <- target.ln + 1;
          Some (right.lkeys.(0), L right)
        end
      end
  | I n -> (
      let i = child_index n.seps n.kn key in
      match insert t n.kids.(i) key value with
      | None -> None
      | Some (boundary, sibling) ->
          if n.kn < fanout then begin
            Array.blit n.seps i n.seps (i + 1) (n.kn - 1 - i);
            Array.blit n.kids (i + 1) n.kids (i + 2) (n.kn - 1 - i);
            n.seps.(i) <- boundary;
            n.kids.(i + 1) <- sibling;
            n.kn <- n.kn + 1;
            None
          end
          else begin
            (* split the internal compound node *)
            Array.blit n.seps i n.seps (i + 1) (n.kn - 1 - i);
            Array.blit n.kids (i + 1) n.kids (i + 2) (n.kn - 1 - i);
            n.seps.(i) <- boundary;
            n.kids.(i + 1) <- sibling;
            let kn = n.kn + 1 in
            let mid = kn / 2 in
            let up = n.seps.(mid - 1) in
            let right =
              I
                {
                  seps = Array.init fanout (fun j ->
                      if j < kn - mid - 1 then n.seps.(mid + j) else "");
                  kids =
                    Array.init (fanout + 1) (fun j ->
                        if j < kn - mid then n.kids.(mid + j) else L (new_leaf ()));
                  kn = kn - mid;
                }
            in
            n.kn <- mid;
            Array.fill n.seps (mid - 1) (fanout - mid + 1) "";
            Some (up, right)
          end)

let put t key value =
  match insert t t.root key value with
  | None -> ()
  | Some (boundary, sibling) ->
      let seps = Array.make fanout "" in
      let kids = Array.make (fanout + 1) (L (new_leaf ())) in
      seps.(0) <- boundary;
      kids.(0) <- t.root;
      kids.(1) <- sibling;
      t.root <- I { seps; kids; kn = 2 }

(* Deletion removes the entry without re-merging compound nodes. *)
let delete t key =
  let rec go node =
    match node with
    | L l ->
        let i = lower_bound l.lkeys l.ln key in
        if i < l.ln && l.lkeys.(i) = key then begin
          Array.blit l.lkeys (i + 1) l.lkeys i (l.ln - i - 1);
          Array.blit l.lvals (i + 1) l.lvals i (l.ln - i - 1);
          l.ln <- l.ln - 1;
          l.lkeys.(l.ln) <- "";
          true
        end
        else false
    | I n -> go n.kids.(child_index n.seps n.kn key)
  in
  let removed = go t.root in
  if removed then begin
    t.count <- t.count - 1;
    t.key_bytes <- t.key_bytes - String.length key
  end;
  removed

exception Stop

let range t ?(start = "") f =
  let rec visit node =
    match node with
    | L l ->
        for i = 0 to l.ln - 1 do
          if String.compare l.lkeys.(i) start >= 0 then
            if not (f l.lkeys.(i) (Some l.lvals.(i))) then raise Stop
        done
    | I n ->
        let first = if start = "" then 0 else child_index n.seps n.kn start in
        for i = first to n.kn - 1 do
          visit n.kids.(i)
        done
  in
  if t.count > 0 then try visit t.root with Stop -> ()

let length t = t.count

let height t =
  let rec go = function L _ -> 1 | I n -> 1 + go n.kids.(0) in
  go t.root

(* HOT compound node: 16-byte header, ~4-byte sparse partial key and an
   8-byte (tagged) pointer per entry.  Leaf entries point into the
   external k/v array counted without padding (paper Section 4.1). *)
let node_bytes t =
  let total = ref 0 and entries = ref 0 in
  let rec go = function
    | L l ->
        incr entries;
        total := !total + Kvcommon.Mem_model.malloc (16 + (l.ln * (4 + 8)))
    | I n ->
        total := !total + Kvcommon.Mem_model.malloc (16 + (n.kn * (4 + 8)));
        for i = 0 to n.kn - 1 do
          go n.kids.(i)
        done
  in
  go t.root;
  !total

let memory_usage t = node_bytes t + (t.count * 8) + t.key_bytes

let memory_usage_opt t = node_bytes t + (t.count * 8)
