(** HOT-style height-optimized trie (Binna et al., SIGMOD 2018; paper
    Section 2.2).

    HOT combines multiple binary-Patricia levels into compound nodes with
    a data-dependent span so that every node reaches a fan-out of up to
    [k = 32] regardless of key distribution, which minimizes tree height
    over sparse key spaces.  This implementation keeps the essential
    structure — compound nodes of up to 32 entries split along their
    median discriminative boundary, giving the same height and fan-out
    profile — while replacing the SIMD partial-key matching of the
    original with a binary search over the node's discriminative
    boundaries (DESIGN.md substitutions).  Deletions remove entries
    without node re-merging (the HOT paper's evaluation also concentrates
    on insert/lookup).

    Memory is accounted per HOT's compound-node layout: a 16-byte header
    per node plus a sparse partial key (~4 bytes, the HOT paper reports
    ~31 discriminative bits on average) and an 8-byte pointer per entry;
    leaf entries are tagged pointers to the external key/value pairs,
    counted without padding, exactly like the paper's ART/HOT setup.
    [memory_usage_opt] is the paper's HOTopt lower bound (values up to 8
    bytes inlined, no external pair array). *)

include Kvcommon.Kv_intf.S

val memory_usage_opt : t -> int
(** The paper's HOTopt lower bound. *)

val height : t -> int
(** Compound-node height (the quantity HOT minimizes). *)
