(** Common interface implemented by every key-value store in this
    repository: Hyperion itself and all comparison structures of the paper's
    evaluation (ART, HOT, Judy, HAT-trie, red-black tree, hash table).

    Keys are arbitrary byte strings already transformed to binary-comparable
    form (see {!Key_codec}); values are 64-bit integers, matching the paper's
    experiments where every value is a 64-bit word. *)

module type S = sig
  type t
  (** A mutable key-value store instance. *)

  val name : string
  (** Short display name used by the benchmark harness ("Hyperion", "ART",
      ...). *)

  val create : unit -> t
  (** [create ()] is a fresh, empty store. *)

  val put : t -> string -> int64 -> unit
  (** [put t key value] inserts or replaces the binding of [key]. *)

  val get : t -> string -> int64 option
  (** [get t key] is the value bound to [key], if any. *)

  val mem : t -> string -> bool
  (** [mem t key] is [true] iff [key] is present (with or without value). *)

  val delete : t -> string -> bool
  (** [delete t key] removes [key]; [true] iff it was present. *)

  val range : t -> ?start:string -> (string -> int64 option -> bool) -> unit
  (** [range t ?start f] invokes [f key value] for every stored key
      [>= start] (or from the smallest key when [start] is omitted) in
      ascending binary-comparable order, until [f] returns [false] or keys
      are exhausted.  Mirrors the paper's callback-based range queries. *)

  val length : t -> int
  (** Number of keys currently stored. *)

  val memory_usage : t -> int
  (** Estimated resident bytes of the index {e including} stored keys and
      values, following the memory accounting described in DESIGN.md
      (exact for Hyperion, analytic C-layout accounting for baselines). *)
end

(** Stores that additionally support key-only membership (the paper's
    type-10 "leaf without value" nodes, Judy1-style sets). *)
module type SET = sig
  include S

  val add : t -> string -> unit
  (** [add t key] inserts [key] without an attached value. *)
end
