let malloc_header = 8
let pointer = 8

let malloc n =
  if n < 0 then invalid_arg "Mem_model.malloc: negative size";
  let gross = n + malloc_header in
  let aligned = (gross + 15) / 16 * 16 in
  max 32 aligned
