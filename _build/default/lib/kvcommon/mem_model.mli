(** Analytic memory accounting for the C baselines.

    The paper measures resident memory of C/C++ implementations via
    [/proc/self/status].  Reproducing that in OCaml would measure the OCaml
    GC heap, which has nothing to do with the C node layouts the paper
    compares (boxed words, headers, copying collection).  Instead every
    baseline in this repository tracks the bytes its C counterpart would
    hold, using the allocator model from the paper's Section 3.2: heap
    allocators impose an eight-byte per-segment overhead and 16-byte
    alignment (ptmalloc2). *)

val malloc_header : int
(** Per-allocation bookkeeping bytes of a typical heap allocator (8, per
    the paper: "Heap allocators typically store the allocation size
    internally and impose an eight-byte overhead per segment"). *)

val malloc : int -> int
(** [malloc n] is the resident cost of a heap allocation of [n] payload
    bytes: header plus payload, rounded up to 16-byte granularity (glibc
    ptmalloc2 behaviour, minimum chunk 32 bytes). *)

val pointer : int
(** Size of a native pointer on the paper's evaluation platform (8). *)
