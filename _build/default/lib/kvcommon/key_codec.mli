(** Binary-comparable key transformations (Leis et al., used by the paper in
    Sections 2.1 and 4.4).

    A transformation [f] is binary-comparable when the natural order of the
    source domain coincides with the bytewise lexicographic order of the
    encoded strings, so that tries and ordered structures agree on ordering
    without knowing the key type. *)

val of_u64 : int64 -> string
(** [of_u64 x] encodes an unsigned 64-bit integer big-endian (most
    significant byte first).  This is the paper's "reversed byte order" for
    little-endian Intel machines: unsigned numeric order = bytewise order. *)

val to_u64 : string -> int64
(** Inverse of {!of_u64}.  @raise Invalid_argument if the string is not
    exactly 8 bytes. *)

val of_i64 : int64 -> string
(** [of_i64 x] encodes a signed 64-bit integer by flipping the sign bit and
    then encoding big-endian, so that signed order = bytewise order. *)

val to_i64 : string -> int64
(** Inverse of {!of_i64}. *)

val of_u32 : int32 -> string
(** Big-endian encoding of an unsigned 32-bit integer (4 bytes). *)

val to_u32 : string -> int32
(** Inverse of {!of_u32}. *)

val reverse_bytes : string -> string
(** [reverse_bytes k] is Oracle's reverse-key-index transformation mentioned
    in Section 3.4: the key with its byte order reversed. *)

val compare_binary : string -> string -> int
(** Bytewise lexicographic comparison treating bytes as unsigned — the
    order all stores in this repository maintain.  Equal to
    [String.compare] in OCaml (documented here for emphasis). *)
