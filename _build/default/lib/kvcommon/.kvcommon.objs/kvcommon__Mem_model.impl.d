lib/kvcommon/mem_model.ml:
