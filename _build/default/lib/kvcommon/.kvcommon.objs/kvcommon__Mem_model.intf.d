lib/kvcommon/mem_model.mli:
