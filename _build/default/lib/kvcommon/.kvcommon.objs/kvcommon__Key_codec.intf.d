lib/kvcommon/key_codec.mli:
