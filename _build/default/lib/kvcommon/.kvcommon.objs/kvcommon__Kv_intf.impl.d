lib/kvcommon/kv_intf.ml:
