lib/kvcommon/key_codec.ml: Bytes Int64 String
