(** Judy-style adaptive 256-ary radix tree (Baskins; paper Section 2.2).

    Judy arrays pioneered nodes that adapt their memory layout to the
    actual population: this implementation provides the three canonical
    layouts — linear nodes (sorted key array, up to 7 entries), bitmap
    nodes (256-bit occupancy bitmap plus a packed pointer array), and
    uncompressed nodes (256 pointers) — together with Judy's vertical
    compression (single-descent paths collapsed into a prefix) and
    JudySL-style leaves storing the remaining key suffix.

    Thresholds between layouts follow population, so the per-node memory
    closely tracks real Judy behaviour; the intricate cache-line sub-
    expanse machinery of the original is abstracted away (DESIGN.md).
    Memory is accounted per the C layouts. *)

include Kvcommon.Kv_intf.S
