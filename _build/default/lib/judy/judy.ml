type leaf = { mutable lkey : string; mutable lvalue : int64 }

type node = Leaf of leaf | Inner of inner

and inner = {
  mutable prefix : string;  (* vertical compression *)
  mutable term : leaf option;
  mutable kind : kind;
}

and kind =
  | Linear of { mutable lkeys : Bytes.t; mutable lkids : node option array; mutable ln : int }
  | Bitmap of { bitmap : Bytes.t; mutable bkids : node array }
      (* packed child array ordered by key; index = rank in the bitmap *)
  | Full of { fkids : node option array }

type t = {
  mutable root : node option;
  mutable count : int;
  mutable key_bytes : int;
}

let name = "Judy"
let linear_max = 7
let bitmap_max = 187 (* beyond this an uncompressed node is smaller *)

let create () = { root = None; count = 0; key_bytes = 0 }

(* ---- bitmap helpers ---- *)

let bit_mem bm c = Bytes.get_uint8 bm (c lsr 3) land (1 lsl (c land 7)) <> 0

let bit_set bm c =
  Bytes.set_uint8 bm (c lsr 3) (Bytes.get_uint8 bm (c lsr 3) lor (1 lsl (c land 7)))

let bit_clear bm c =
  Bytes.set_uint8 bm (c lsr 3)
    (Bytes.get_uint8 bm (c lsr 3) land lnot (1 lsl (c land 7)))

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

(* Rank of key [c]: number of set bits strictly below it. *)
let bit_rank bm c =
  let rank = ref 0 in
  for i = 0 to (c lsr 3) - 1 do
    rank := !rank + popcount_byte (Bytes.get_uint8 bm i)
  done;
  !rank + popcount_byte (Bytes.get_uint8 bm (c lsr 3) land ((1 lsl (c land 7)) - 1))

(* ---- generic child operations ---- *)

let find_child inner c =
  match inner.kind with
  | Linear l ->
      let rec go i =
        if i >= l.ln then None
        else if Bytes.get_uint8 l.lkeys i = c then l.lkids.(i)
        else go (i + 1)
      in
      go 0
  | Bitmap b -> if bit_mem b.bitmap c then Some b.bkids.(bit_rank b.bitmap c) else None
  | Full f -> f.fkids.(c)

let set_child inner c child =
  match inner.kind with
  | Linear l ->
      let rec go i =
        if i >= l.ln then assert false
        else if Bytes.get_uint8 l.lkeys i = c then l.lkids.(i) <- Some child
        else go (i + 1)
      in
      go 0
  | Bitmap b ->
      assert (bit_mem b.bitmap c);
      b.bkids.(bit_rank b.bitmap c) <- child
  | Full f -> f.fkids.(c) <- Some child

let child_count inner =
  match inner.kind with
  | Linear l -> l.ln
  | Bitmap b -> Array.length b.bkids
  | Full f ->
      let n = ref 0 in
      Array.iter (fun k -> if k <> None then incr n) f.fkids;
      !n

let new_linear () =
  Linear { lkeys = Bytes.make linear_max '\000'; lkids = Array.make linear_max None; ln = 0 }

let new_inner prefix = { prefix; term = None; kind = new_linear () }

let iter_children inner f =
  match inner.kind with
  | Linear l ->
      for i = 0 to l.ln - 1 do
        match l.lkids.(i) with Some k -> f (Bytes.get_uint8 l.lkeys i) k | None -> ()
      done
  | Bitmap b ->
      let idx = ref 0 in
      for c = 0 to 255 do
        if bit_mem b.bitmap c then begin
          f c b.bkids.(!idx);
          incr idx
        end
      done
  | Full fk ->
      for c = 0 to 255 do
        match fk.fkids.(c) with Some k -> f c k | None -> ()
      done

(* Switch layout when the population crosses a threshold (horizontal
   compression: the node shape tracks the population). *)
let relayout inner =
  let n = child_count inner in
  let rebuild_bitmap () =
    let bitmap = Bytes.make 32 '\000' in
    let kids = Array.make n (Leaf { lkey = ""; lvalue = 0L }) in
    let i = ref 0 in
    iter_children inner (fun c k ->
        bit_set bitmap c;
        kids.(!i) <- k;
        incr i);
    inner.kind <- Bitmap { bitmap; bkids = kids }
  in
  let rebuild_linear () =
    let l = Bytes.make linear_max '\000' in
    let kids = Array.make linear_max None in
    let i = ref 0 in
    iter_children inner (fun c k ->
        Bytes.set_uint8 l !i c;
        kids.(!i) <- Some k;
        incr i);
    inner.kind <- Linear { lkeys = l; lkids = kids; ln = n }
  in
  let rebuild_full () =
    let fkids = Array.make 256 None in
    iter_children inner (fun c k -> fkids.(c) <- Some k);
    inner.kind <- Full { fkids }
  in
  match inner.kind with
  | Linear _ when n > linear_max -> rebuild_bitmap ()
  | Bitmap _ when n > bitmap_max -> rebuild_full ()
  | Bitmap _ when n <= linear_max -> rebuild_linear ()
  | Full _ when n <= bitmap_max -> rebuild_bitmap ()
  | Linear _ | Bitmap _ | Full _ -> ()

let add_child inner c child =
  (* ensure capacity: a full linear node becomes a bitmap node first *)
  (match inner.kind with
  | Linear l when l.ln >= linear_max ->
      let n = l.ln in
      let bitmap = Bytes.make 32 '\000' in
      let kids = Array.make n (Leaf { lkey = ""; lvalue = 0L }) in
      for i = 0 to n - 1 do
        bit_set bitmap (Bytes.get_uint8 l.lkeys i);
        kids.(i) <- Option.get l.lkids.(i)
      done;
      inner.kind <- Bitmap { bitmap; bkids = kids }
  | _ -> ());
  match inner.kind with
  | Linear l ->
      let pos = ref l.ln in
      while !pos > 0 && Bytes.get_uint8 l.lkeys (!pos - 1) > c do
        Bytes.set_uint8 l.lkeys !pos (Bytes.get_uint8 l.lkeys (!pos - 1));
        l.lkids.(!pos) <- l.lkids.(!pos - 1);
        decr pos
      done;
      Bytes.set_uint8 l.lkeys !pos c;
      l.lkids.(!pos) <- Some child;
      l.ln <- l.ln + 1
  | Bitmap b ->
      assert (not (bit_mem b.bitmap c));
      let rank = bit_rank b.bitmap c in
      let n = Array.length b.bkids in
      let kids = Array.make (n + 1) child in
      Array.blit b.bkids 0 kids 0 rank;
      Array.blit b.bkids rank kids (rank + 1) (n - rank);
      bit_set b.bitmap c;
      b.bkids <- kids;
      if n + 1 > bitmap_max then relayout inner
  | Full f -> f.fkids.(c) <- Some child

let remove_child inner c =
  (match inner.kind with
  | Linear l ->
      let rec find i = if Bytes.get_uint8 l.lkeys i = c then i else find (i + 1) in
      let i = find 0 in
      for j = i to l.ln - 2 do
        Bytes.set_uint8 l.lkeys j (Bytes.get_uint8 l.lkeys (j + 1));
        l.lkids.(j) <- l.lkids.(j + 1)
      done;
      l.lkids.(l.ln - 1) <- None;
      l.ln <- l.ln - 1
  | Bitmap b ->
      let rank = bit_rank b.bitmap c in
      let n = Array.length b.bkids in
      let kids = Array.make (n - 1) (Leaf { lkey = ""; lvalue = 0L }) in
      Array.blit b.bkids 0 kids 0 rank;
      Array.blit b.bkids (rank + 1) kids rank (n - 1 - rank);
      bit_clear b.bitmap c;
      b.bkids <- kids
  | Full f -> f.fkids.(c) <- None);
  relayout inner

(* ---- shared radix-tree logic (as in ART, with Judy layouts) ---- *)

let common_prefix_len a apos b bpos =
  let n = min (String.length a - apos) (String.length b - bpos) in
  let rec go i = if i < n && a.[apos + i] = b.[bpos + i] then go (i + 1) else i in
  go 0

let rec search node key depth =
  match node with
  | Leaf l -> if l.lkey = key then Some l else None
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then None
      else
        let depth = depth + plen in
        if depth = String.length key then inner.term
        else begin
          match find_child inner (Char.code key.[depth]) with
          | Some child -> search child key (depth + 1)
          | None -> None
        end

let get t key =
  match t.root with
  | None -> None
  | Some root -> ( match search root key 0 with Some l -> Some l.lvalue | None -> None)

let mem t key = get t key <> None

let rec insert t parent_set node key value depth =
  match node with
  | Leaf l ->
      if l.lkey = key then l.lvalue <- value
      else begin
        let m = common_prefix_len key depth l.lkey depth in
        let inner = new_inner (String.sub key depth m) in
        let place lf =
          if String.length lf.lkey = depth + m then inner.term <- Some lf
          else add_child inner (Char.code lf.lkey.[depth + m]) (Leaf lf)
        in
        place l;
        place { lkey = key; lvalue = value };
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        parent_set (Inner inner)
      end
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then begin
        let top = new_inner (String.sub inner.prefix 0 m) in
        let rest_first = Char.code inner.prefix.[m] in
        inner.prefix <- String.sub inner.prefix (m + 1) (plen - m - 1);
        add_child top rest_first (Inner inner);
        (if depth + m = String.length key then
           top.term <- Some { lkey = key; lvalue = value }
         else
           add_child top
             (Char.code key.[depth + m])
             (Leaf { lkey = key; lvalue = value }));
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        parent_set (Inner top)
      end
      else begin
        let depth = depth + plen in
        if depth = String.length key then begin
          match inner.term with
          | Some l -> l.lvalue <- value
          | None ->
              inner.term <- Some { lkey = key; lvalue = value };
              t.count <- t.count + 1;
              t.key_bytes <- t.key_bytes + String.length key
        end
        else begin
          let c = Char.code key.[depth] in
          match find_child inner c with
          | Some child ->
              insert t (fun n -> set_child inner c n) child key value (depth + 1)
          | None ->
              add_child inner c (Leaf { lkey = key; lvalue = value });
              t.count <- t.count + 1;
              t.key_bytes <- t.key_bytes + String.length key
        end
      end

let put t key value =
  match t.root with
  | None ->
      t.root <- Some (Leaf { lkey = key; lvalue = value });
      t.count <- 1;
      t.key_bytes <- String.length key
  | Some root -> insert t (fun n -> t.root <- Some n) root key value 0

let compress inner =
  if child_count inner = 1 && inner.term = None then begin
    let only = ref None in
    iter_children inner (fun c k -> only := Some (c, k));
    match !only with
    | Some (c, Inner child) ->
        child.prefix <- inner.prefix ^ String.make 1 (Char.chr c) ^ child.prefix;
        Some (Inner child)
    | Some (_, Leaf l) -> Some (Leaf l)
    | None -> None
  end
  else if child_count inner = 0 then
    match inner.term with Some l -> Some (Leaf l) | None -> None
  else None

let rec remove t parent_set node key depth =
  match node with
  | Leaf l ->
      if l.lkey = key then begin
        parent_set None;
        true
      end
      else false
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then false
      else begin
        let depth = depth + plen in
        let removed =
          if depth = String.length key then (
            match inner.term with
            | Some _ ->
                inner.term <- None;
                true
            | None -> false)
          else begin
            let c = Char.code key.[depth] in
            match find_child inner c with
            | Some child ->
                remove t
                  (fun n ->
                    match n with
                    | Some n -> set_child inner c n
                    | None -> remove_child inner c)
                  child key (depth + 1)
            | None -> false
          end
        in
        if removed then begin
          match compress inner with
          | Some replacement -> parent_set (Some replacement)
          | None ->
              if child_count inner = 0 && inner.term = None then parent_set None
        end;
        removed
      end

let delete t key =
  match t.root with
  | None -> false
  | Some root ->
      let removed = remove t (fun n -> t.root <- n) root key 0 in
      if removed then begin
        t.count <- t.count - 1;
        t.key_bytes <- t.key_bytes - String.length key
      end;
      removed

exception Stop

let range t ?(start = "") f =
  let rec visit node =
    match node with
    | Leaf l ->
        if String.compare l.lkey start >= 0 && not (f l.lkey (Some l.lvalue))
        then raise Stop
    | Inner inner ->
        (match inner.term with
        | Some l ->
            if String.compare l.lkey start >= 0 && not (f l.lkey (Some l.lvalue))
            then raise Stop
        | None -> ());
        iter_children inner (fun _ k -> visit k)
  in
  match t.root with
  | None -> ()
  | Some root -> ( try visit root with Stop -> ())

let length t = t.count

(* Judy memory model: linear nodes sized to population (key byte + pointer
   per entry, one-word header), bitmap nodes a 32-byte bitmap plus packed
   pointers, uncompressed nodes 256 pointers; JudySL leaves store the
   remaining suffix with the value. *)
let memory_usage t =
  let total = ref 0 in
  let rec go node depth =
    match node with
    | Leaf l ->
        let suffix = max 0 (String.length l.lkey - depth) in
        total := !total + Kvcommon.Mem_model.malloc (suffix + 1 + 8)
    | Inner inner ->
        let plen = String.length inner.prefix in
        (match inner.kind with
        | Linear l ->
            total := !total + Kvcommon.Mem_model.malloc (8 + plen + (l.ln * 9))
        | Bitmap b ->
            total :=
              !total
              + Kvcommon.Mem_model.malloc
                  (8 + plen + 32 + (Array.length b.bkids * 8))
        | Full _ ->
            total := !total + Kvcommon.Mem_model.malloc (8 + plen + (256 * 8)));
        (match inner.term with
        | Some _ -> total := !total + Kvcommon.Mem_model.malloc 8
        | None -> ());
        iter_children inner (fun _ k -> go k (depth + plen + 1))
  in
  (match t.root with Some r -> go r 0 | None -> ());
  !total
