type node = {
  nkey : string;
  mutable nvalue : int64;
  nhash : int;
  mutable next : node option;
}

type t = {
  mutable buckets : node option array;
  mutable count : int;
  mutable key_bytes : int;
}

let name = "Hash"
let initial_buckets = 16

let create () =
  { buckets = Array.make initial_buckets None; count = 0; key_bytes = 0 }

(* FNV-1a, 64-bit folded into OCaml's int range. *)
let fnv1a key =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let bucket_of t h = h mod Array.length t.buckets

let find_node t key h =
  let rec go = function
    | None -> None
    | Some n -> if n.nhash = h && n.nkey = key then Some n else go n.next
  in
  go t.buckets.(bucket_of t h)

let rehash t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) None;
  Array.iter
    (fun chain ->
      let rec go = function
        | None -> ()
        | Some n ->
            let next = n.next in
            let b = bucket_of t n.nhash in
            n.next <- t.buckets.(b);
            t.buckets.(b) <- Some n;
            go next
      in
      go chain)
    old

let put t key value =
  let h = fnv1a key in
  match find_node t key h with
  | Some n -> n.nvalue <- value
  | None ->
      if t.count >= Array.length t.buckets then rehash t;
      let b = bucket_of t h in
      t.buckets.(b) <- Some { nkey = key; nvalue = value; nhash = h; next = t.buckets.(b) };
      t.count <- t.count + 1;
      t.key_bytes <- t.key_bytes + String.length key

let get t key =
  match find_node t key (fnv1a key) with Some n -> Some n.nvalue | None -> None

let mem t key = find_node t key (fnv1a key) <> None

let delete t key =
  let h = fnv1a key in
  let b = bucket_of t h in
  let rec go prev = function
    | None -> false
    | Some n when n.nhash = h && n.nkey = key ->
        (match prev with
        | None -> t.buckets.(b) <- n.next
        | Some p -> p.next <- n.next);
        t.count <- t.count - 1;
        t.key_bytes <- t.key_bytes - String.length key;
        true
    | Some n -> go (Some n) n.next
  in
  go None t.buckets.(b)

(* Hash tables have no order; the paper excludes them from range queries.
   Provided for interface completeness by collect-and-sort. *)
let range t ?(start = "") f =
  let items = ref [] in
  Array.iter
    (fun chain ->
      let rec go = function
        | None -> ()
        | Some n ->
            if String.compare n.nkey start >= 0 then
              items := (n.nkey, n.nvalue) :: !items;
            go n.next
      in
      go chain)
    t.buckets;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !items in
  let rec emit = function
    | [] -> ()
    | (k, v) :: rest -> if f k (Some v) then emit rest
  in
  emit sorted

let length t = t.count

(* libstdc++ unordered_map: __detail::_Hash_node (next pointer + cached
   hash + value_type of std::string key and 8-byte value) per element, one
   pointer per bucket. *)
let memory_usage t =
  let node = Kvcommon.Mem_model.malloc (8 + 8 + 32 + 8) in
  (t.count * node)
  + (Array.length t.buckets * Kvcommon.Mem_model.pointer)
  + Kvcommon.Mem_model.malloc t.key_bytes
