(** Chained hash table — the paper's [std::unordered_map] baseline.

    Separate chaining with doubling growth at load factor 1, FNV-1a
    hashing.  Rehashing recomputes every key's bucket, reproducing the
    paper's observation that insert throughput dips when the table resizes.
    The paper excludes this structure from range queries (no order);
    [range] here falls back to collecting and sorting — callers that want
    the paper's behaviour simply do not call it.

    Memory accounting mirrors libstdc++'s [unordered_map]: a bucket
    pointer array plus one heap node per element (next pointer, cached
    hash, [std::string] key, 8-byte value). *)

include Kvcommon.Kv_intf.S
