(** HAT-trie (Askitis & Sinha; paper Section 2.2) — a burst trie whose
    containers are cache-conscious array hash tables.

    Trie nodes hold 256 child pointers; leaves are containers hashing key
    suffixes into slots, each slot one contiguous byte buffer of
    [(length, suffix, value)] entries appended back to back (the array
    hash).  A container bursts into a trie node with fresh containers when
    its population exceeds the burst threshold.  Pure containers only (the
    hybrid variant is a further optimization; DESIGN.md).

    Range queries must sort container contents on demand — the weakness
    the paper's Table 3 exposes. *)

include Kvcommon.Kv_intf.S

val burst_threshold : int
(** Entries per container before it bursts (8192, HAT-trie default). *)
