let burst_threshold = 8192
let initial_slots = 16
let max_slots = 512

(* Array-hash container: each slot is one contiguous buffer of records
   [u16 suffix length | suffix | 8-byte value] appended back to back. *)
type container = {
  mutable slots : Bytes.t array;
  mutable used : int array;
  mutable n : int;
}

type node =
  | Container of container
  | Trie of { kids : node option array; mutable term : int64 option }

type t = { mutable root : node; mutable count : int }

let name = "HAT"

let new_container () =
  { slots = Array.make initial_slots Bytes.empty; used = Array.make initial_slots 0; n = 0 }

let create () = { root = Container (new_container ()); count = 0 }

let fnv1a_sub key pos =
  let h = ref 0x3f29ce484222325 in
  for i = pos to String.length key - 1 do
    h := !h lxor Char.code key.[i];
    h := !h * 0x100000001b3
  done;
  !h land max_int

let fnv1a_bytes buf pos len =
  let h = ref 0x3f29ce484222325 in
  for i = pos to pos + len - 1 do
    h := !h lxor Bytes.get_uint8 buf i;
    h := !h * 0x100000001b3
  done;
  !h land max_int

let read_len buf pos = Bytes.get_uint8 buf pos lor (Bytes.get_uint8 buf (pos + 1) lsl 8)

(* Scan a slot for the record whose suffix equals key[from..]; returns the
   record's position. *)
let find_record c slot key from =
  let want = String.length key - from in
  let buf = c.slots.(slot) and used = c.used.(slot) in
  let rec go pos =
    if pos >= used then None
    else begin
      let len = read_len buf pos in
      let matches =
        len = want
        &&
        let rec eq i =
          i = len || (Bytes.get buf (pos + 2 + i) = key.[from + i] && eq (i + 1))
        in
        eq 0
      in
      if matches then Some pos else go (pos + 2 + len + 8)
    end
  in
  go 0

let slot_of c h = h mod Array.length c.slots

let append_record c slot suffix_src from len value =
  let need = c.used.(slot) + 2 + len + 8 in
  if Bytes.length c.slots.(slot) < need then begin
    let cap = max 32 (max need (2 * Bytes.length c.slots.(slot))) in
    let fresh = Bytes.make cap '\000' in
    Bytes.blit c.slots.(slot) 0 fresh 0 c.used.(slot);
    c.slots.(slot) <- fresh
  end;
  let buf = c.slots.(slot) and pos = c.used.(slot) in
  Bytes.set_uint8 buf pos (len land 0xff);
  Bytes.set_uint8 buf (pos + 1) (len lsr 8);
  Bytes.blit_string suffix_src from buf (pos + 2) len;
  Bytes.set_int64_le buf (pos + 2 + len) value;
  c.used.(slot) <- need;
  c.n <- c.n + 1

(* Double the slot table, rehashing every record (the paper's observed
   insert-rate dips). *)
let resize c =
  let old_slots = c.slots and old_used = c.used in
  let nslots = 2 * Array.length c.slots in
  c.slots <- Array.make nslots Bytes.empty;
  c.used <- Array.make nslots 0;
  c.n <- 0;
  Array.iteri
    (fun i buf ->
      let used = old_used.(i) in
      let pos = ref 0 in
      while !pos < used do
        let len = read_len buf !pos in
        let h = fnv1a_bytes buf (!pos + 2) len in
        let value = Bytes.get_int64_le buf (!pos + 2 + len) in
        let s = Bytes.sub_string buf (!pos + 2) len in
        append_record c (h mod nslots) s 0 len value;
        pos := !pos + 2 + len + 8
      done)
    old_slots

let iter_container c f =
  Array.iteri
    (fun i buf ->
      let used = c.used.(i) in
      let pos = ref 0 in
      while !pos < used do
        let len = read_len buf !pos in
        f (Bytes.sub_string buf (!pos + 2) len) (Bytes.get_int64_le buf (!pos + 2 + len));
        pos := !pos + 2 + len + 8
      done)
    c.slots

(* Burst: replace the container by a trie node over the suffix's first
   character, distributing records into fresh child containers. *)
let burst c =
  let kids = Array.make 256 None in
  let term = ref None in
  iter_container c (fun suffix value ->
      if suffix = "" then term := Some value
      else begin
        let ch = Char.code suffix.[0] in
        let child =
          match kids.(ch) with
          | Some (Container cc) -> cc
          | _ ->
              let cc = new_container () in
              kids.(ch) <- Some (Container cc);
              cc
        in
        let len = String.length suffix - 1 in
        let h = fnv1a_sub suffix 1 in
        append_record child (slot_of child h) suffix 1 len value
      end);
  Trie { kids; term = !term }

let put t key value =
  let rec go node depth parent_set =
    match node with
    | Trie tn ->
        if depth = String.length key then begin
          if tn.term = None then t.count <- t.count + 1;
          tn.term <- Some value
        end
        else begin
          let c = Char.code key.[depth] in
          match tn.kids.(c) with
          | Some child ->
              go child (depth + 1) (fun n -> tn.kids.(c) <- Some n)
          | None ->
              let cc = new_container () in
              tn.kids.(c) <- Some (Container cc);
              go (Container cc) (depth + 1) (fun n -> tn.kids.(c) <- Some n)
        end
    | Container c -> (
        let h = fnv1a_sub key depth in
        let slot = slot_of c h in
        match find_record c slot key depth with
        | Some pos ->
            let buf = c.slots.(slot) in
            let len = read_len buf pos in
            Bytes.set_int64_le buf (pos + 2 + len) value
        | None ->
            if c.n >= burst_threshold then begin
              let trie = burst c in
              parent_set trie;
              go trie depth parent_set
            end
            else begin
              if c.n > 8 * Array.length c.slots && Array.length c.slots < max_slots
              then resize c;
              let slot = slot_of c h in
              append_record c slot key depth (String.length key - depth) value;
              t.count <- t.count + 1
            end)
  in
  go t.root 0 (fun n -> t.root <- n)

let get t key =
  let rec go node depth =
    match node with
    | Trie tn ->
        if depth = String.length key then tn.term
        else begin
          match tn.kids.(Char.code key.[depth]) with
          | Some child -> go child (depth + 1)
          | None -> None
        end
    | Container c -> (
        let slot = slot_of c (fnv1a_sub key depth) in
        match find_record c slot key depth with
        | Some pos ->
            let buf = c.slots.(slot) in
            let len = read_len buf pos in
            Some (Bytes.get_int64_le buf (pos + 2 + len))
        | None -> None)
  in
  go t.root 0

let mem t key = get t key <> None

let delete t key =
  let rec go node depth =
    match node with
    | Trie tn ->
        if depth = String.length key then (
          match tn.term with
          | Some _ ->
              tn.term <- None;
              true
          | None -> false)
        else begin
          match tn.kids.(Char.code key.[depth]) with
          | Some child -> go child (depth + 1)
          | None -> false
        end
    | Container c -> (
        let slot = slot_of c (fnv1a_sub key depth) in
        match find_record c slot key depth with
        | Some pos ->
            let buf = c.slots.(slot) in
            let len = read_len buf pos in
            let rec_size = 2 + len + 8 in
            Bytes.blit buf (pos + rec_size) buf pos (c.used.(slot) - pos - rec_size);
            c.used.(slot) <- c.used.(slot) - rec_size;
            c.n <- c.n - 1;
            true
        | None -> false)
  in
  let removed = go t.root 0 in
  if removed then t.count <- t.count - 1;
  removed

exception Stop

(* Ordered iteration: containers are unordered, so their contents are
   collected and sorted on demand — the cost the paper's Table 3 shows. *)
let range t ?(start = "") f =
  let prefix = Buffer.create 64 in
  let emit k v = if not (f k (Some v)) then raise Stop in
  let rec visit node =
    match node with
    | Trie tn ->
        (match tn.term with
        | Some v ->
            let k = Buffer.contents prefix in
            if String.compare k start >= 0 then emit k v
        | None -> ());
        for c = 0 to 255 do
          match tn.kids.(c) with
          | Some child ->
              Buffer.add_char prefix (Char.chr c);
              visit child;
              Buffer.truncate prefix (Buffer.length prefix - 1)
          | None -> ()
        done
    | Container c ->
        let items = ref [] in
        let p = Buffer.contents prefix in
        iter_container c (fun suffix value ->
            let k = p ^ suffix in
            if String.compare k start >= 0 then items := (k, value) :: !items);
        let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !items in
        List.iter (fun (k, v) -> emit k v) sorted
  in
  try visit t.root with Stop -> ()

let length t = t.count

(* Trie node: 256 pointers + header.  Container: slot-pointer and usage
   arrays plus each slot's allocated buffer. *)
let memory_usage t =
  let total = ref 0 in
  let rec go = function
    | Trie tn ->
        total := !total + Kvcommon.Mem_model.malloc (16 + (256 * 8));
        Array.iter (function Some k -> go k | None -> ()) tn.kids
    | Container c ->
        total :=
          !total + Kvcommon.Mem_model.malloc (16 + (Array.length c.slots * 12));
        Array.iter
          (fun buf ->
            if Bytes.length buf > 0 then
              total := !total + Kvcommon.Mem_model.malloc (Bytes.length buf))
          c.slots
  in
  go t.root;
  !total
