(** Scaled reproductions of every table and figure in the paper's
    evaluation (Section 4).  Each function generates its workload, drives
    the full comparison set, and prints rows/series in the paper's shape;
    see DESIGN.md's per-experiment index and EXPERIMENTS.md for
    paper-vs-measured numbers. *)

type kpi_row = {
  rname : string;
  puts_mops : float;
  gets_mops : float;
  mem_bytes : int;
  bytes_per_key : float;
  pm_norm : float;  (** (puts+gets)/memory, normalized to Hyperion *)
}

val kpi_table :
  title:string ->
  drivers:Driver.driver list ->
  Workload.Dataset.t ->
  kpi_row list
(** Insert the whole data set (timed), look every key up in insertion
    order (timed, as the paper does), read memory, and print one row per
    structure plus the ARTC/ARTopt/HOTopt memory-model rows. *)

val table1 : n:int -> unit
(** Table 1: sequential and randomized n-gram string keys. *)

val table2 : n:int -> unit
(** Table 2: sequential and randomized 64-bit integer k/v (including
    Hyperion_p on the randomized set). *)

val table3 : n_int:int -> n_str:int -> unit
(** Table 3: full-index ordered range-query durations for all four data
    sets (hash table and plain ART excluded, as in the paper). *)

val fig13 : budget:int -> unit
(** Figure 13: how many keys fit in a fixed memory budget (random
    integers; sequential n-gram strings). *)

val fig14 : n:int -> unit
(** Figure 14: Hyperion's per-superbin allocated/empty chunk profile for
    the ordered vs. randomized string data set. *)

val fig15 : n:int -> unit
(** Figure 15: put/get throughput vs. index size (checkpointed series)
    plus the memory-footprint comparison, integer keys. *)

val fig16 : n:int -> unit
(** Figure 16: Hyperion vs. Hyperion_p per-superbin allocation
    distribution after random-integer load. *)

val arena_scaling : n:int -> unit
(** Extension: parallel ingest throughput over 1..256 arenas and 1..4
    domains (the paper's Section 3.2 claim of thread safety with limited
    speed-ups). *)

val ablation : n:int -> unit
(** Extension: Hyperion design-choice ablations (delta encoding is free;
    disable jump successors/tables, container splitting, embedding and
    path compression via Config) on random strings. *)
