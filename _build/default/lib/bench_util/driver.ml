module Make_hyperion (C : sig
  val name : string
  val config : Hyperion.Config.t
end) : Kvcommon.Kv_intf.S = struct
  type t = Hyperion.Store.t

  let name = C.name
  let create () = Hyperion.Store.create ~config:C.config ()
  let put = Hyperion.Store.put
  let get = Hyperion.Store.get
  let mem = Hyperion.Store.mem
  let delete = Hyperion.Store.delete
  let range = Hyperion.Store.range
  let length = Hyperion.Store.length
  let memory_usage = Hyperion.Store.memory_usage
end

(* Benchmarks run at laptop scale, so the memory manager's bins are scaled
   down with them (64 chunks per bin instead of 4096) — the same shape of
   external fragmentation at 1/64 of the granularity; see DESIGN.md. *)
let bench_cpb = 64

module Hyperion_kv = Make_hyperion (struct
  let name = "Hyperion"
  let config = { Hyperion.Config.default with chunks_per_bin = bench_cpb }
end)

module Hyperion_strings = Make_hyperion (struct
  let name = "Hyperion"
  let config = { Hyperion.Config.strings with chunks_per_bin = bench_cpb }
end)

module Hyperion_p = Make_hyperion (struct
  let name = "Hyperion_p"
  let config =
    { Hyperion.Config.default with preprocess = true; chunks_per_bin = bench_cpb }
end)

type instance =
  | Instance :
      (module Kvcommon.Kv_intf.S with type t = 'a)
      * 'a
      * (unit -> (string * int) list)
      -> instance

type driver = { dname : string; make : unit -> instance }

let open_instance d = d.make ()
let name (Instance ((module S), _, _)) = S.name
let put (Instance ((module S), s, _)) k v = S.put s k v
let get (Instance ((module S), s, _)) k = S.get s k
let delete (Instance ((module S), s, _)) k = S.delete s k
let range (Instance ((module S), s, _)) ?start f = S.range s ?start f
let length (Instance ((module S), s, _)) = S.length s
let memory_usage (Instance ((module S), s, _)) = S.memory_usage s
let alt_memories (Instance (_, _, alt)) = alt ()

let driver (type a) dname (module S : Kvcommon.Kv_intf.S with type t = a) =
  { dname; make = (fun () -> Instance ((module S), S.create (), fun () -> [])) }

(* ART and HOT additionally report the paper's ARTC / ARTopt / HOTopt
   memory models for the same index. *)
let art_driver =
  {
    dname = "ART";
    make =
      (fun () ->
        let s = Art.create () in
        Instance
          ( (module Art),
            s,
            fun () ->
              [
                ("ARTC", Art.memory_usage_model s Art.Leafalloc);
                ("ARTopt", Art.memory_usage_model s Art.Opt);
              ] ));
  }

let hot_driver =
  {
    dname = "HOT";
    make =
      (fun () ->
        let s = Hot.create () in
        Instance
          ((module Hot), s, fun () -> [ ("HOTopt", Hot.memory_usage_opt s) ]));
  }

let for_integers () =
  [
    driver "Hyperion" (module Hyperion_kv);
    driver "Hyperion_p" (module Hyperion_p);
    driver "Judy" (module Judy);
    driver "HAT" (module Hat);
    art_driver;
    hot_driver;
    driver "RB-Tree" (module Rbtree);
    driver "Hash" (module Hashkv);
  ]

let for_strings () =
  [
    driver "Hyperion" (module Hyperion_strings);
    driver "Judy" (module Judy);
    driver "HAT" (module Hat);
    art_driver;
    hot_driver;
    driver "RB-Tree" (module Rbtree);
    driver "Hash" (module Hashkv);
  ]

let ordered_only = List.filter (fun d -> d.dname <> "Hash")
