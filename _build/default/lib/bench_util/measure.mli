(** Wall-clock measurement helpers for the benchmark harness. *)

val time : (unit -> unit) -> float
(** Seconds elapsed running the thunk. *)

val mops : int -> float -> float
(** [mops n seconds] is millions of operations per second. *)

val mib : int -> float
(** Bytes to MiB. *)

val bytes_per_key : int -> int -> float
(** [bytes_per_key bytes keys]. *)
