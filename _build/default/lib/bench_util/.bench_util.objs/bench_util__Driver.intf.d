lib/bench_util/driver.mli: Kvcommon
