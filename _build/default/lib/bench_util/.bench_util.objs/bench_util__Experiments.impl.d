lib/bench_util/experiments.ml: Array Domain Driver Hashtbl Hyperion Kvcommon List Measure Printf String Workload
