lib/bench_util/measure.mli:
