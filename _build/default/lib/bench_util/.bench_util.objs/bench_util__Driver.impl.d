lib/bench_util/driver.ml: Art Hashkv Hat Hot Hyperion Judy Kvcommon List Rbtree
