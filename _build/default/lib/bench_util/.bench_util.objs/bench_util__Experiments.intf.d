lib/bench_util/experiments.mli: Driver Workload
