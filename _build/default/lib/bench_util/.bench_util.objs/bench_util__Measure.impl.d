lib/bench_util/measure.ml: Unix
