let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let mops n seconds = if seconds <= 0.0 then 0.0 else float_of_int n /. seconds /. 1e6
let mib bytes = float_of_int bytes /. 1048576.0

let bytes_per_key bytes keys =
  if keys = 0 then 0.0 else float_of_int bytes /. float_of_int keys
