type kpi_row = {
  rname : string;
  puts_mops : float;
  gets_mops : float;
  mem_bytes : int;
  bytes_per_key : float;
  pm_norm : float;
}

let pf = Printf.printf

let hr () =
  pf "%s\n" (String.make 78 '-')

(* (puts + gets per second) / memory footprint — Eq. (5). *)
let pm_ratio puts gets mem =
  if mem = 0 then 0.0 else (puts +. gets) *. 1e6 /. float_of_int mem

let kpi_table ~title ~drivers (ds : Workload.Dataset.t) =
  pf "\n== %s (%d keys) ==\n" title (Array.length ds.pairs);
  pf "%-12s %9s %9s %12s %8s %6s\n" "" "Puts MOPS" "Gets MOPS" "Mem MiB" "B/key"
    "P/M";
  hr ();
  let n = Array.length ds.pairs in
  let rows = ref [] in
  List.iter
    (fun d ->
      let inst = Driver.open_instance d in
      let put_s =
        Measure.time (fun () ->
            Array.iter (fun (k, v) -> Driver.put inst k v) ds.pairs)
      in
      let misses = ref 0 in
      let get_s =
        Measure.time (fun () ->
            Array.iter
              (fun (k, _) -> if Driver.get inst k = None then incr misses)
              ds.pairs)
      in
      if !misses > 0 then
        failwith (Printf.sprintf "%s lost %d keys" d.Driver.dname !misses);
      let mem = Driver.memory_usage inst in
      let row =
        {
          rname = d.Driver.dname;
          puts_mops = Measure.mops n put_s;
          gets_mops = Measure.mops n get_s;
          mem_bytes = mem;
          bytes_per_key = Measure.bytes_per_key mem n;
          pm_norm = pm_ratio (Measure.mops n put_s) (Measure.mops n get_s) mem;
        }
      in
      rows := row :: !rows;
      (* lower-bound memory-model rows (ARTC / ARTopt / HOTopt) *)
      List.iter
        (fun (mname, mbytes) ->
          rows :=
            {
              rname = mname;
              puts_mops = row.puts_mops;
              gets_mops = row.gets_mops;
              mem_bytes = mbytes;
              bytes_per_key = Measure.bytes_per_key mbytes n;
              pm_norm = pm_ratio row.puts_mops row.gets_mops mbytes;
            }
            :: !rows)
        (Driver.alt_memories inst))
    drivers;
  let rows = List.rev !rows in
  let hyperion_pm =
    match List.find_opt (fun r -> r.rname = "Hyperion") rows with
    | Some r -> r.pm_norm
    | None -> 1.0
  in
  let rows =
    List.map
      (fun r ->
        { r with pm_norm = (if hyperion_pm > 0.0 then r.pm_norm /. hyperion_pm else 0.0) })
      rows
  in
  List.iter
    (fun r ->
      let perf_known = not (String.length r.rname > 3 && String.sub r.rname (String.length r.rname - 3) 3 = "opt") in
      let model_row = r.rname = "ARTC" || not perf_known in
      if model_row && (r.rname = "ARTopt" || r.rname = "HOTopt") then
        pf "%-12s %9s %9s %12.1f %8.1f %6s\n" r.rname "" ""
          (Measure.mib r.mem_bytes) r.bytes_per_key ""
      else
        pf "%-12s %9.3f %9.3f %12.1f %8.1f %6.2f\n" r.rname r.puts_mops
          r.gets_mops (Measure.mib r.mem_bytes) r.bytes_per_key r.pm_norm)
    rows;
  flush stdout;
  rows

(* ---- Table 1: string keys ---- *)

let table1 ~n =
  let sorted = Workload.Dataset.ngrams_sorted n in
  let random = Workload.Dataset.shuffled sorted in
  pf "\n#### Table 1 — string data sets (avg key %.2f B) ####\n"
    (Workload.Ngram.average_key_length sorted.pairs);
  ignore
    (kpi_table ~title:"Sequential (sorted) string keys"
       ~drivers:(Driver.for_strings ()) sorted);
  ignore
    (kpi_table ~title:"Randomized string keys" ~drivers:(Driver.for_strings ())
       { random with name = "rand-str" })

(* ---- Table 2: integer keys ---- *)

let table2 ~n =
  pf "\n#### Table 2 — 64-bit integer k/v ####\n";
  let seq = Workload.Dataset.seq_ints n in
  let integer_drivers_no_p =
    List.filter (fun d -> d.Driver.dname <> "Hyperion_p") (Driver.for_integers ())
  in
  ignore
    (kpi_table ~title:"Sequential integer keys" ~drivers:integer_drivers_no_p seq);
  let rand = Workload.Dataset.rand_ints n in
  ignore
    (kpi_table ~title:"Randomized integer keys"
       ~drivers:(Driver.for_integers ()) rand)

(* ---- Table 3: range queries ---- *)

let range_row inst n =
  let visited = ref 0 in
  let secs =
    Measure.time (fun () ->
        Driver.range inst (fun _ _ ->
            incr visited;
            true))
  in
  if !visited <> n then
    failwith
      (Printf.sprintf "%s range visited %d of %d" (Driver.name inst) !visited n);
  secs

let table3 ~n_int ~n_str =
  pf "\n#### Table 3 — full-index range query duration (seconds) ####\n";
  pf "%-12s %12s %12s %12s %12s\n" "" "int seq" "int rand" "str seq" "str rand";
  hr ();
  let datasets =
    [
      (`Int, Workload.Dataset.seq_ints n_int);
      (`Int, Workload.Dataset.rand_ints n_int);
      (`Str, Workload.Dataset.ngrams_sorted n_str);
      (`Str, Workload.Dataset.ngrams_random n_str);
    ]
  in
  (* The paper runs Hyperion_p only on random integers; ART and the hash
     table are excluded (no ordered iterator in their implementations).
     Our ART supports ordered traversal, so it stands in for ARTC. *)
  let names =
    [ "Hyperion"; "Hyperion_p"; "Judy"; "HAT"; "ART"; "HOT"; "RB-Tree" ]
  in
  let results = Hashtbl.create 16 in
  List.iteri
    (fun col (kind, ds) ->
      let drivers =
        match kind with `Int -> Driver.for_integers () | `Str -> Driver.for_strings ()
      in
      List.iter
        (fun d ->
          let dn = d.Driver.dname in
          let applicable =
            List.mem dn names
            && (dn <> "Hyperion_p" || (kind = `Int && col = 1))
          in
          if applicable then begin
            let inst = Driver.open_instance d in
            Array.iter (fun (k, v) -> Driver.put inst k v) ds.Workload.Dataset.pairs;
            let secs = range_row inst (Array.length ds.Workload.Dataset.pairs) in
            Hashtbl.replace results (dn, col) secs
          end)
        (Driver.ordered_only drivers))
    datasets;
  List.iter
    (fun dn ->
      let cell col =
        match Hashtbl.find_opt results (dn, col) with
        | Some s -> Printf.sprintf "%12.3f" s
        | None -> Printf.sprintf "%12s" "-"
      in
      pf "%-12s %s %s %s %s\n" dn (cell 0) (cell 1) (cell 2) (cell 3))
    names

(* ---- Figure 13: keys within a memory budget ---- *)

let fill_until_budget (d : Driver.driver) budget next_pair =
  let inst = Driver.open_instance d in
  let continue = ref true in
  while !continue do
    (match next_pair () with
    | Some (k, v) -> Driver.put inst k v
    | None -> continue := false);
    if Driver.length inst mod 4096 = 0 && Driver.memory_usage inst > budget
    then continue := false
  done;
  Driver.length inst

let fig13 ~budget =
  pf "\n#### Figure 13 — keys indexable within %.0f MiB ####\n"
    (Measure.mib budget);
  pf "%-12s %16s %16s\n" "" "random ints" "seq 3-gram strings";
  hr ();
  (* streamed workloads so the data set never bounds the fill *)
  let int_stream () =
    let rng = Workload.Mt19937_64.create 777L in
    fun () ->
      let v = Workload.Mt19937_64.next_u64 rng in
      Some (Kvcommon.Key_codec.of_u64 v, v)
  in
  let str_stream () =
    (* sorted stream approximated by a large pre-sorted block *)
    let ds = Workload.Dataset.ngrams_sorted 400_000 in
    let i = ref 0 in
    fun () ->
      if !i >= Array.length ds.pairs then None
      else begin
        let p = ds.pairs.(!i) in
        incr i;
        Some p
      end
  in
  let names = [ "Hyperion"; "Hyperion_p"; "Judy"; "HAT"; "ART"; "RB-Tree"; "Hash" ] in
  List.iter
    (fun dn ->
      let ints =
        match
          List.find_opt (fun d -> d.Driver.dname = dn) (Driver.for_integers ())
        with
        | Some d -> Some (fill_until_budget d budget (int_stream ()))
        | None -> None
      in
      let strs =
        if dn = "Hyperion_p" then None
        else
          match
            List.find_opt (fun d -> d.Driver.dname = dn) (Driver.for_strings ())
          with
          | Some d -> Some (fill_until_budget d budget (str_stream ()))
          | None -> None
      in
      let cell = function
        | Some v -> Printf.sprintf "%16d" v
        | None -> Printf.sprintf "%16s" "-"
      in
      pf "%-12s %s %s\n" dn (cell ints) (cell strs))
    names

(* ---- Figures 14 and 16: Hyperion superbin profiles ---- *)

let print_profile label (store : Hyperion.Store.t) =
  let profile = Hyperion.Store.superbin_profile store in
  let total_alloc = ref 0 and total_empty = ref 0 in
  let bytes_alloc = ref 0 and bytes_empty = ref 0 in
  pf "\n-- %s --\n" label;
  pf "%4s %10s %12s %12s %14s %14s\n" "SB" "chunk B" "alloc chunks" "empty chunks"
    "alloc bytes" "empty bytes";
  Array.iteri
    (fun i (s : Hyperion.Memman.superbin_stats) ->
      total_alloc := !total_alloc + s.allocated_chunks;
      total_empty := !total_empty + s.empty_chunks;
      bytes_alloc := !bytes_alloc + s.allocated_bytes;
      bytes_empty := !bytes_empty + s.empty_bytes;
      if s.allocated_chunks > 0 || s.empty_chunks > 0 then
        pf "%4d %10d %12d %12d %14d %14d\n" i s.chunk_size s.allocated_chunks
          s.empty_chunks s.allocated_bytes s.empty_bytes)
    profile;
  pf "TOTAL allocated %d chunks / %.2f MiB; empty %d chunks / %.2f MiB\n"
    !total_alloc (Measure.mib !bytes_alloc) !total_empty
    (Measure.mib !bytes_empty);
  flush stdout

let bench_cpb = 64

let fig14 ~n =
  pf "\n#### Figure 14 — Hyperion memory characteristics, string keys ####\n";
  let sorted = Workload.Dataset.ngrams_sorted n in
  let cfg = { Hyperion.Config.strings with chunks_per_bin = bench_cpb } in
  let s1 = Hyperion.Store.create ~config:cfg () in
  Array.iter (fun (k, v) -> Hyperion.Store.put s1 k v) sorted.pairs;
  print_profile "ordered string data set" s1;
  let random = Workload.Dataset.shuffled sorted in
  let s2 = Hyperion.Store.create ~config:cfg () in
  Array.iter (fun (k, v) -> Hyperion.Store.put s2 k v) random.pairs;
  print_profile "randomized string data set" s2

let fig16 ~n =
  pf "\n#### Figure 16 — Hyperion vs Hyperion_p allocations, random ints ####\n";
  let ds = Workload.Dataset.rand_ints n in
  let plain =
    Hyperion.Store.create
      ~config:{ Hyperion.Config.default with chunks_per_bin = bench_cpb }
      ()
  in
  Array.iter (fun (k, v) -> Hyperion.Store.put plain k v) ds.pairs;
  print_profile "Hyperion" plain;
  let pp =
    Hyperion.Store.create
      ~config:
        {
          Hyperion.Config.default with
          preprocess = true;
          chunks_per_bin = bench_cpb;
        }
      ()
  in
  Array.iter (fun (k, v) -> Hyperion.Store.put pp k v) ds.pairs;
  print_profile "Hyperion_p (pre-processed)" pp;
  pf "allocated chunks: Hyperion %d vs Hyperion_p %d (paper: factor ~72 fewer)\n"
    (Hyperion.Store.allocated_chunks plain)
    (Hyperion.Store.allocated_chunks pp)

(* ---- Figure 15: throughput vs index size ---- *)

let curve ~checkpoints (ds : Workload.Dataset.t) (d : Driver.driver) =
  let inst = Driver.open_instance d in
  let n = Array.length ds.pairs in
  let step = max 1 (n / checkpoints) in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let upto = min n (!i + step) in
    let secs =
      Measure.time (fun () ->
          for j = !i to upto - 1 do
            let k, v = ds.pairs.(j) in
            Driver.put inst k v
          done)
    in
    out := (upto, Measure.mops (upto - !i) secs) :: !out;
    i := upto
  done;
  (* gets pass, same checkpointing *)
  let gets = ref [] in
  let i = ref 0 in
  while !i < n do
    let upto = min n (!i + step) in
    let secs =
      Measure.time (fun () ->
          for j = !i to upto - 1 do
            let k, _ = ds.pairs.(j) in
            ignore (Driver.get inst k)
          done)
    in
    gets := (upto, Measure.mops (upto - !i) secs) :: !gets;
    i := upto
  done;
  (List.rev !out, List.rev !gets, Driver.memory_usage inst)

let fig15 ~n =
  pf "\n#### Figure 15 — throughput vs index size (integer keys) ####\n";
  List.iter
    (fun (label, ds) ->
      pf "\n-- %s --\n" label;
      let drivers =
        if label = "sequential" then
          List.filter
            (fun d -> d.Driver.dname <> "Hyperion_p")
            (Driver.for_integers ())
        else Driver.for_integers ()
      in
      List.iter
        (fun d ->
          let puts, gets, mem = curve ~checkpoints:10 ds d in
          pf "%-12s puts MOPS:" d.Driver.dname;
          List.iter (fun (_, m) -> pf " %6.2f" m) puts;
          pf "\n%-12s gets MOPS:" "";
          List.iter (fun (_, m) -> pf " %6.2f" m) gets;
          pf "\n%-12s memory: %.1f MiB\n" "" (Measure.mib mem))
        drivers)
    [
      ("sequential", Workload.Dataset.seq_ints n);
      ("randomized", Workload.Dataset.rand_ints n);
    ]

(* ---- Ablations ---- *)

let ablation ~n =
  pf "\n#### Ablation — Hyperion design choices (random strings, n=%d) ####\n" n;
  let ds = Workload.Dataset.ngrams_random n in
  let base = { Hyperion.Config.strings with chunks_per_bin = bench_cpb } in
  let variants =
    [
      ("full", base);
      ("no-delta", { base with delta_encoding = false });
      ( "no-jumps",
        {
          base with
          js_threshold = 1_000_000;
          tnode_jt_threshold = 1_000_000;
          container_jt_threshold = 1_000_000;
        } );
      ("no-split", { base with split_a = Hyperion.Layout.max_container_size });
      ("no-embed", { base with embedded_max = 9 });
      ("min-pc", { base with pc_max = 1 });
    ]
  in
  pf "%-12s %9s %9s %12s %8s\n" "" "Puts MOPS" "Gets MOPS" "Mem MiB" "B/key";
  hr ();
  List.iter
    (fun (label, config) ->
      let s = Hyperion.Store.create ~config () in
      let put_s =
        Measure.time (fun () ->
            Array.iter (fun (k, v) -> Hyperion.Store.put s k v) ds.pairs)
      in
      let get_s =
        Measure.time (fun () ->
            Array.iter (fun (k, _) -> ignore (Hyperion.Store.get s k)) ds.pairs)
      in
      let mem = Hyperion.Store.memory_usage s in
      let n = Array.length ds.pairs in
      pf "%-12s %9.3f %9.3f %12.1f %8.1f\n" label (Measure.mops n put_s)
        (Measure.mops n get_s) (Measure.mib mem)
        (Measure.bytes_per_key mem n))
    variants

(* ---- Arena scaling (paper Section 3.2: "they are not optimized yet and
   only provide limited speed-ups", factors of two to three) ---- *)

let arena_scaling ~n =
  pf "\n#### Arena scaling — parallel ingest over locked arenas ####\n";
  pf "(paper: arenas are thread-safe but only give limited speed-ups)\n";
  let ds = Workload.Dataset.rand_ints n in
  pf "%-8s %12s %10s\n" "arenas" "domains" "Puts MOPS";
  hr ();
  List.iter
    (fun (arenas, domains) ->
      let store =
        Hyperion.Store.create
          ~config:
            { Hyperion.Config.default with arenas; chunks_per_bin = bench_cpb }
          ()
      in
      let pairs = ds.Workload.Dataset.pairs in
      let chunk = Array.length pairs / domains in
      let worker d () =
        let lo = d * chunk in
        let hi = if d = domains - 1 then Array.length pairs else lo + chunk in
        for i = lo to hi - 1 do
          let k, v = pairs.(i) in
          Hyperion.Store.put store k v
        done
      in
      let secs =
        Measure.time (fun () ->
            let spawned =
              List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
            in
            worker 0 ();
            List.iter Domain.join spawned)
      in
      if Hyperion.Store.length store <> Array.length pairs then
        failwith "arena scaling lost keys";
      pf "%-8d %12d %10.3f\n" arenas domains
        (Measure.mops (Array.length pairs) secs))
    [ (1, 1); (4, 2); (16, 4); (64, 4); (256, 4) ];
  flush stdout
