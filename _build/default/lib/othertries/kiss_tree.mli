(** KISS-Tree (Kissinger et al., DaMoN 2012; paper Section 2.3).

    A latch-free three-level trie specialized to 32-bit keys: the 16-bit
    first fragment addresses level two directly (no memory access), the
    10-bit second fragment selects a bucket of compact (32-bit) pointers,
    and the 6-bit third fragment resolves within a compressed leaf node
    whose 64-bit bitmap marks which entries exist.

    Keys here are exactly 4 bytes (big-endian 32-bit, see
    {!Kvcommon.Key_codec.of_u32}); other lengths are rejected — the
    structure's whole point is the fixed split 16/10/6. *)

include Kvcommon.Kv_intf.S
