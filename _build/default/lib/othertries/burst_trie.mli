(** Burst trie (Heinz, Zobel & Williams 2002; paper Section 2.2) — the
    HAT-trie's ancestor.

    Trie nodes map one character to child nodes or containers; small
    sub-tries live in containers managed, per the original paper's best
    heuristic, as move-to-front linked lists of (suffix, value) records.
    A container bursts into a trie node once its population exceeds the
    burst threshold.  Kept here as the paper's historical reference point
    for HAT (which replaced the lists with cache-conscious array hashes). *)

include Kvcommon.Kv_intf.S

val burst_threshold : int
