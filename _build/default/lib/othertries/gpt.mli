(** Generalized Prefix Tree (Böhm et al., BTW 2011; paper Section 2.3).

    A fixed-span radix trie whose nodes live in large pre-allocated memory
    segments and are referenced by 32-bit offsets instead of native
    pointers, which removes per-node allocator overhead and halves the
    child-reference cost — the idea Hyperion generalizes with its memory
    manager and Hyperion Pointers.

    This implementation uses the paper's 4-bit span (16-ary nodes over
    nibbles), segment-allocated nodes, and no path compression — exactly
    the combination ART §2.3 criticizes for worst-case memory, which makes
    it a useful ablation reference here.  Keys of arbitrary length are
    decomposed into nibbles; values live in the terminating node. *)

include Kvcommon.Kv_intf.S

val node_count : t -> int
