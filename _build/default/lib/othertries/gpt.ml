(* 16-ary trie over nibbles.  Nodes live in growable integer segments:
   node i occupies cells [i*18, (i+1)*18): 16 child offsets (0 = none),
   one terminal flag, one value index (-1 = none); values in a side
   array.  Offsets-as-references mirror the GPT's segment design. *)

let span = 16
let node_cells = span + 2

type t = {
  mutable cells : int array;  (* node storage *)
  mutable nodes : int;
  mutable values : int64 array;
  mutable nvalues : int;
  mutable free_values : int list;  (* recycled value slots *)
  mutable count : int;
  mutable key_nibbles : int;  (* live key payload for accounting *)
}

let name = "GPT"

let new_node t =
  let need = (t.nodes + 1) * node_cells in
  if Array.length t.cells < need then begin
    let bigger = Array.make (max need (2 * Array.length t.cells)) 0 in
    Array.blit t.cells 0 bigger 0 (t.nodes * node_cells);
    t.cells <- bigger
  end;
  let id = t.nodes in
  Array.fill t.cells (id * node_cells) node_cells 0;
  t.cells.((id * node_cells) + span + 1) <- -1;
  t.nodes <- id + 1;
  id

let create () =
  let t =
    {
      cells = Array.make (64 * node_cells) 0;
      nodes = 0;
      values = Array.make 64 0L;
      nvalues = 0;
      free_values = [];
      count = 0;
      key_nibbles = 0;
    }
  in
  ignore (new_node t) (* root = node 0 *);
  t

let child t node nib = t.cells.((node * node_cells) + nib)

let set_child t node nib v = t.cells.((node * node_cells) + nib) <- v

let value_ix t node = t.cells.((node * node_cells) + span + 1)

let set_value_ix t node ix = t.cells.((node * node_cells) + span + 1) <- ix

(* nibble i of the key, high nibble first *)
let nibble key i =
  let b = Char.code key.[i / 2] in
  if i mod 2 = 0 then b lsr 4 else b land 0xf

let nibbles key = 2 * String.length key

let alloc_value t v =
  match t.free_values with
  | ix :: rest ->
      t.free_values <- rest;
      t.values.(ix) <- v;
      ix
  | [] ->
      if t.nvalues >= Array.length t.values then begin
        let bigger = Array.make (2 * Array.length t.values) 0L in
        Array.blit t.values 0 bigger 0 t.nvalues;
        t.values <- bigger
      end;
      t.values.(t.nvalues) <- v;
      t.nvalues <- t.nvalues + 1;
      t.nvalues - 1

let descend t key ~create_path =
  let n = nibbles key in
  let rec go node i =
    if i = n then Some node
    else begin
      let c = child t node (nibble key i) in
      if c <> 0 then go c (i + 1)
      else if create_path then begin
        let fresh = new_node t in
        set_child t node (nibble key i) fresh;
        go fresh (i + 1)
      end
      else None
    end
  in
  go 0 0

let put t key value =
  match descend t key ~create_path:true with
  | Some node ->
      if value_ix t node >= 0 then t.values.(value_ix t node) <- value
      else begin
        set_value_ix t node (alloc_value t value);
        t.count <- t.count + 1;
        t.key_nibbles <- t.key_nibbles + nibbles key
      end
  | None -> assert false

let get t key =
  match descend t key ~create_path:false with
  | Some node when value_ix t node >= 0 -> Some t.values.(value_ix t node)
  | _ -> None

let mem t key = get t key <> None

let delete t key =
  match descend t key ~create_path:false with
  | Some node when value_ix t node >= 0 ->
      t.free_values <- value_ix t node :: t.free_values;
      set_value_ix t node (-1);
      t.count <- t.count - 1;
      t.key_nibbles <- t.key_nibbles - nibbles key;
      (* nodes are not reclaimed: the GPT's segments only grow *)
      true
  | _ -> false

exception Stop

let range t ?(start = "") f =
  (* depth-first in nibble order = binary-comparable key order; terminals
     exist only at even nibble depth (whole bytes) *)
  let buf = Buffer.create 32 in
  let emit v =
    let k = Buffer.contents buf in
    if String.compare k start >= 0 && not (f k (Some v)) then raise Stop
  in
  let rec visit node ~half =
    (match half with
    | None -> if value_ix t node >= 0 then emit t.values.(value_ix t node)
    | Some _ -> ());
    for nib = 0 to span - 1 do
      let c = child t node nib in
      if c <> 0 then begin
        match half with
        | None -> visit c ~half:(Some nib)
        | Some hi ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor nib));
            visit c ~half:None;
            Buffer.truncate buf (Buffer.length buf - 1)
      end
    done
  in
  try visit 0 ~half:None with Stop -> ()

let length t = t.count

let node_count t = t.nodes

(* GPT node: 16 4-byte child offsets + bookkeeping, no per-node malloc
   header (segment allocation); values 8 bytes each. *)
let memory_usage t =
  (t.nodes * ((span * 4) + 8)) + (t.nvalues * 8) + 64 (* segment headers *)

