let burst_threshold = 256 (* "limit" heuristic of the original paper *)

type record = { mutable suffix : string; mutable rvalue : int64 }

type node =
  | Container of { mutable records : record list; mutable n : int }
  | Trie of { kids : node option array; mutable term : int64 option }

type t = { mutable root : node; mutable count : int }

let name = "BurstTrie"

let new_container () = Container { records = []; n = 0 }
let create () = { root = new_container (); count = 0 }

(* Move-to-front search: the original authors' most effective container
   discipline. *)
let find_mtf c suffix =
  match c with
  | Trie _ -> assert false
  | Container cc ->
      let rec go acc = function
        | [] -> None
        | r :: rest ->
            if r.suffix = suffix then begin
              cc.records <- r :: List.rev_append acc rest;
              Some r
            end
            else go (r :: acc) rest
      in
      go [] cc.records

let burst records =
  let kids = Array.make 256 None in
  let term = ref None in
  List.iter
    (fun r ->
      if r.suffix = "" then term := Some r.rvalue
      else begin
        let c = Char.code r.suffix.[0] in
        let sub = String.sub r.suffix 1 (String.length r.suffix - 1) in
        match kids.(c) with
        | Some (Container cc) ->
            cc.records <- { suffix = sub; rvalue = r.rvalue } :: cc.records;
            cc.n <- cc.n + 1
        | _ ->
            kids.(c) <-
              Some
                (Container
                   { records = [ { suffix = sub; rvalue = r.rvalue } ]; n = 1 })
      end)
    records;
  Trie { kids; term = !term }

let put t key value =
  let rec go node depth parent_set =
    match node with
    | Trie tn ->
        if depth = String.length key then begin
          if tn.term = None then t.count <- t.count + 1;
          tn.term <- Some value
        end
        else begin
          let c = Char.code key.[depth] in
          (match tn.kids.(c) with
          | None -> tn.kids.(c) <- Some (new_container ())
          | Some _ -> ());
          match tn.kids.(c) with
          | Some child -> go child (depth + 1) (fun n -> tn.kids.(c) <- Some n)
          | None -> assert false
        end
    | Container cc as cnode -> (
        let suffix = String.sub key depth (String.length key - depth) in
        match find_mtf cnode suffix with
        | Some r -> r.rvalue <- value
        | None ->
            if cc.n >= burst_threshold then begin
              let trie = burst cc.records in
              parent_set trie;
              go trie depth parent_set
            end
            else begin
              cc.records <- { suffix; rvalue = value } :: cc.records;
              cc.n <- cc.n + 1;
              t.count <- t.count + 1
            end)
  in
  go t.root 0 (fun n -> t.root <- n)

let get t key =
  let rec go node depth =
    match node with
    | Trie tn ->
        if depth = String.length key then tn.term
        else begin
          match tn.kids.(Char.code key.[depth]) with
          | Some child -> go child (depth + 1)
          | None -> None
        end
    | Container _ as c -> (
        match find_mtf c (String.sub key depth (String.length key - depth)) with
        | Some r -> Some r.rvalue
        | None -> None)
  in
  go t.root 0

let mem t key = get t key <> None

let delete t key =
  let rec go node depth =
    match node with
    | Trie tn ->
        if depth = String.length key then (
          match tn.term with
          | Some _ ->
              tn.term <- None;
              true
          | None -> false)
        else begin
          match tn.kids.(Char.code key.[depth]) with
          | Some child -> go child (depth + 1)
          | None -> false
        end
    | Container cc ->
        let suffix = String.sub key depth (String.length key - depth) in
        let before = cc.n in
        cc.records <- List.filter (fun r -> r.suffix <> suffix) cc.records;
        cc.n <- List.length cc.records;
        cc.n < before
  in
  let removed = go t.root 0 in
  if removed then t.count <- t.count - 1;
  removed

exception Stop

let range t ?(start = "") f =
  let prefix = Buffer.create 32 in
  let emit k v = if not (f k (Some v)) then raise Stop in
  let rec visit node =
    match node with
    | Trie tn ->
        (match tn.term with
        | Some v ->
            let k = Buffer.contents prefix in
            if String.compare k start >= 0 then emit k v
        | None -> ());
        for c = 0 to 255 do
          match tn.kids.(c) with
          | Some child ->
              Buffer.add_char prefix (Char.chr c);
              visit child;
              Buffer.truncate prefix (Buffer.length prefix - 1)
          | None -> ()
        done
    | Container cc ->
        let p = Buffer.contents prefix in
        cc.records
        |> List.filter_map (fun r ->
               let k = p ^ r.suffix in
               if String.compare k start >= 0 then Some (k, r.rvalue) else None)
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (k, v) -> emit k v)
  in
  try visit t.root with Stop -> ()

let length t = t.count

let memory_usage t =
  let total = ref 0 in
  let rec go = function
    | Trie tn ->
        total := !total + Kvcommon.Mem_model.malloc (16 + (256 * 8));
        Array.iter (function Some k -> go k | None -> ()) tn.kids
    | Container cc ->
        total := !total + Kvcommon.Mem_model.malloc 16;
        List.iter
          (fun r ->
            (* list cell: next pointer + suffix pointer/len + value *)
            total :=
              !total
              + Kvcommon.Mem_model.malloc (8 + 8 + 8 + String.length r.suffix))
          cc.records
  in
  go t.root;
  !total
