lib/othertries/gpt.mli: Kvcommon
