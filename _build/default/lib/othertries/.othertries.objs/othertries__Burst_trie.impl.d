lib/othertries/burst_trie.ml: Array Buffer Char Kvcommon List String
