lib/othertries/kiss_tree.mli: Kvcommon
