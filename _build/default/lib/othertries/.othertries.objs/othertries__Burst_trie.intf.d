lib/othertries/burst_trie.mli: Kvcommon
