lib/othertries/gpt.ml: Array Buffer Char String
