lib/othertries/kiss_tree.ml: Array Bytes Int32 Int64 Kvcommon String
