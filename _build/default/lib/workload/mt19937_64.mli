(** 64-bit Mersenne Twister (MT19937-64, Matsumoto & Nishimura).

    The paper generates its random integer keys with the SIMD-oriented Fast
    Mersenne Twister; this is the scalar member of the same generator family
    with identical statistical properties (see DESIGN.md substitutions).
    Implemented from the reference recurrence; reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] initializes the 312-word state from [seed] using the
    reference initialization (multiplier 6364136223846793005). *)

val next_u64 : t -> int64
(** Next 64-bit output (full range, treat as unsigned). *)

val next_below : t -> int -> int
(** [next_below t n] is a uniform integer in [\[0, n)].  [n] must be
    positive. *)

val next_float : t -> float
(** Uniform float in [\[0, 1)] with 53-bit resolution. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by this generator. *)
