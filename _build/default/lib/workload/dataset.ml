type t = { name : string; pairs : (string * int64) array }

let seq_ints n =
  let pairs =
    Array.init n (fun i ->
        let v = Int64.of_int i in
        (Kvcommon.Key_codec.of_u64 v, v))
  in
  { name = "seq-int"; pairs }

let rand_ints ?(seed = 4242L) n =
  let rng = Mt19937_64.create seed in
  let seen = Hashtbl.create (2 * n) in
  let pairs = Array.make (max n 1) ("", 0L) in
  let filled = ref 0 in
  while !filled < n do
    let v = Mt19937_64.next_u64 rng in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      pairs.(!filled) <- (Kvcommon.Key_codec.of_u64 v, v);
      incr filled
    end
  done;
  { name = "rand-int"; pairs = (if n = 0 then [||] else pairs) }

let sorted t =
  let pairs = Array.copy t.pairs in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) pairs;
  { t with pairs }

let shuffled ?(seed = 99991L) t =
  let rng = Mt19937_64.create seed in
  let pairs = Array.copy t.pairs in
  Mt19937_64.shuffle rng pairs;
  { t with pairs }

let ngrams_sorted ?seed n =
  let pairs = Ngram.generate ?seed ~n () in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) pairs;
  { name = "seq-str"; pairs }

let ngrams_random ?seed n =
  { name = "rand-str"; pairs = Ngram.generate ?seed ~n () }
