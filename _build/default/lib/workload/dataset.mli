(** The four data sets of the paper's evaluation (Section 4.1), scaled:
    sequential and randomized 64-bit integers, and sequential (sorted) and
    randomized n-gram strings.  Integer keys are encoded big-endian — the
    paper's "reversed byte order" for little-endian machines — so that tries
    fill depth-first on sequential data. *)

type t = {
  name : string;  (** e.g. ["seq-int"], ["rand-str"] *)
  pairs : (string * int64) array;
      (** distinct binary-comparable keys with 64-bit values, in insertion
          order (sorted for sequential sets, shuffled for randomized). *)
}

val seq_ints : int -> t
(** [seq_ints n] is keys 0..n-1 (big-endian 8-byte), value = key. *)

val rand_ints : ?seed:int64 -> int -> t
(** [rand_ints n] is [n] distinct MT19937-64 draws, big-endian encoded,
    value = key, in draw order. *)

val ngrams_sorted : ?seed:int64 -> int -> t
(** Synthetic n-gram corpus sorted lexicographically (the paper's
    cache-friendly "sequential" string set). *)

val ngrams_random : ?seed:int64 -> int -> t
(** The same corpus in random order. *)

val shuffled : ?seed:int64 -> t -> t
(** A copy of a data set with its insertion order shuffled. *)

val sorted : t -> t
(** A copy sorted by key (binary-comparable order). *)
