lib/workload/mt19937_64.mli:
