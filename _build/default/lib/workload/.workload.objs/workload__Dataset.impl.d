lib/workload/dataset.ml: Array Hashtbl Int64 Kvcommon Mt19937_64 Ngram String
