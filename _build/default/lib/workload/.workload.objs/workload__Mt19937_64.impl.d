lib/workload/mt19937_64.ml: Array Int64
