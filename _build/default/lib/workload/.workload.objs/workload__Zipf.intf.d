lib/workload/zipf.mli: Mt19937_64
