lib/workload/zipf.ml: Array Mt19937_64
