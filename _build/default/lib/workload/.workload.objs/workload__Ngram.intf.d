lib/workload/ngram.mli:
