lib/workload/dataset.mli:
