lib/workload/ngram.ml: Array Buffer Hashtbl Int64 Mt19937_64 String Zipf
