type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let sample t rng =
  let u = Mt19937_64.next_float rng in
  (* First index whose cumulative probability exceeds [u]. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo
