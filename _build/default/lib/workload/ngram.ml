(* English letter frequencies (per mille), used to draw word characters so
   that byte distributions are skewed like natural text. *)
let letter_weights =
  [| ('e', 127); ('t', 91); ('a', 82); ('o', 75); ('i', 70); ('n', 67);
     ('s', 63); ('h', 61); ('r', 60); ('d', 43); ('l', 40); ('c', 28);
     ('u', 28); ('m', 24); ('w', 24); ('f', 22); ('g', 20); ('y', 20);
     ('p', 19); ('b', 15); ('v', 10); ('k', 8); ('j', 2); ('x', 2);
     ('q', 1); ('z', 1) |]

let letter_cdf =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 letter_weights in
  let acc = ref 0 in
  Array.map
    (fun (c, w) ->
      acc := !acc + w;
      (c, float_of_int !acc /. float_of_int total))
    letter_weights

let sample_letter rng =
  let u = Mt19937_64.next_float rng in
  let rec find i =
    let c, cum = letter_cdf.(i) in
    if u <= cum || i = Array.length letter_cdf - 1 then c else find (i + 1)
  in
  find 0

let random_word rng =
  let len = 2 + Mt19937_64.next_below rng 9 in
  String.init len (fun _ -> sample_letter rng)

let build_vocabulary rng size =
  let seen = Hashtbl.create (2 * size) in
  let words = Array.make size "" in
  let filled = ref 0 in
  while !filled < size do
    let w = random_word rng in
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      words.(!filled) <- w;
      incr filled
    end
  done;
  words

let generate ?(seed = 20190301L) ?(vocab_size = 8192) ?(min_words = 2)
    ?(max_words = 5) ~n () =
  if n < 0 then invalid_arg "Ngram.generate: n must be non-negative";
  if min_words < 1 || max_words < min_words then
    invalid_arg "Ngram.generate: need 1 <= min_words <= max_words";
  let rng = Mt19937_64.create seed in
  let vocab = build_vocabulary rng vocab_size in
  let zipf = Zipf.create ~n:vocab_size ~s:1.07 in
  let buf = Buffer.create 64 in
  let make_key () =
    Buffer.clear buf;
    let words = min_words + Mt19937_64.next_below rng (max_words - min_words + 1) in
    for w = 0 to words - 1 do
      if w > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf vocab.(Zipf.sample zipf rng)
    done;
    Buffer.add_char buf '\t';
    Buffer.add_string buf (string_of_int (1800 + Mt19937_64.next_below rng 209));
    Buffer.contents buf
  in
  let make_value () =
    (* Book count (20 bits) and total occurrences (44 bits), as in the
       corpus where both counts are encoded into the stored value. *)
    let books = Int64.of_int (1 + Mt19937_64.next_below rng 1000) in
    let occurrences = Int64.of_int (1 + Mt19937_64.next_below rng 1000000) in
    Int64.logor (Int64.shift_left books 44) occurrences
  in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make (max n 1) ("", 0L) in
  let filled = ref 0 in
  while !filled < n do
    let k = make_key () in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!filled) <- (k, make_value ());
      incr filled
    end
  done;
  if n = 0 then [||] else out

let average_key_length pairs =
  if Array.length pairs = 0 then 0.0
  else
    let total =
      Array.fold_left (fun acc (k, _) -> acc + String.length k) 0 pairs
    in
    float_of_int total /. float_of_int (Array.length pairs)
