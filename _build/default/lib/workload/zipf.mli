(** Zipf-distributed sampling over ranks [0 .. n-1].

    Used by the synthetic n-gram corpus: word frequencies in natural-language
    corpora (such as the Google Books n-grams the paper indexes) follow a
    Zipfian law, which is what gives string data sets their skewed byte
    distributions and heavily shared prefixes. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over [n] ranks with exponent [s]
    (probability of rank [k] proportional to [1/(k+1)^s]).  [n] must be
    positive and [s] non-negative.  O(n) setup, O(log n) sampling. *)

val sample : t -> Mt19937_64.t -> int
(** Draw a rank in [\[0, n)]. *)
