(** Deterministic synthetic Google-Books-style n-gram corpus.

    The paper's string experiments index the Google Books n-gram data set:
    keys are 1- to 5-grams with the publication year appended, values encode
    the book count and total occurrences.  That corpus is hundreds of GiB;
    this generator reproduces its key statistics at configurable scale
    (DESIGN.md, substitutions): a Zipf-distributed vocabulary built from an
    English letter-frequency model, n-grams of 1–5 words joined by spaces,
    a tab-separated year, and values packing two counts into one 64-bit
    word.  Generation is reproducible from the seed and keys are distinct. *)

val generate :
  ?seed:int64 ->
  ?vocab_size:int ->
  ?min_words:int ->
  ?max_words:int ->
  n:int ->
  unit ->
  (string * int64) array
(** [generate ~n ()] is an array of [n] distinct (key, value) pairs in
    random generation order.  Defaults: [seed = 20190301L] (the paper's
    publication month), [vocab_size = 8192], [min_words = 2],
    [max_words = 5]. *)

val average_key_length : (string * int64) array -> float
(** Mean key size in bytes (the paper reports 22.65 B for its corpus). *)
