(* Reference MT19937-64 recurrence (Matsumoto & Nishimura 2004). *)

let nn = 312
let mm = 156
let matrix_a = 0xB5026F5AA96619E9L
let upper_mask = 0xFFFFFFFF80000000L (* most significant 33 bits *)
let lower_mask = 0x7FFFFFFFL (* least significant 31 bits *)

type t = { mt : int64 array; mutable mti : int }

let create seed =
  let mt = Array.make nn 0L in
  mt.(0) <- seed;
  for i = 1 to nn - 1 do
    let prev = mt.(i - 1) in
    mt.(i) <-
      Int64.add
        (Int64.mul 6364136223846793005L
           (Int64.logxor prev (Int64.shift_right_logical prev 62)))
        (Int64.of_int i)
  done;
  { mt; mti = nn }

let twist t =
  let mt = t.mt in
  for i = 0 to nn - 1 do
    let x =
      Int64.logor
        (Int64.logand mt.(i) upper_mask)
        (Int64.logand mt.((i + 1) mod nn) lower_mask)
    in
    let xa = Int64.shift_right_logical x 1 in
    let xa =
      if Int64.logand x 1L <> 0L then Int64.logxor xa matrix_a else xa
    in
    mt.(i) <- Int64.logxor mt.((i + mm) mod nn) xa
  done;
  t.mti <- 0

let next_u64 t =
  if t.mti >= nn then twist t;
  let x = t.mt.(t.mti) in
  t.mti <- t.mti + 1;
  let x = Int64.logxor x (Int64.logand (Int64.shift_right_logical x 29) 0x5555555555555555L) in
  let x = Int64.logxor x (Int64.logand (Int64.shift_left x 17) 0x71D67FFFEDA60000L) in
  let x = Int64.logxor x (Int64.logand (Int64.shift_left x 37) 0xFFF7EEE000000000L) in
  Int64.logxor x (Int64.shift_right_logical x 43)

let next_below t n =
  if n <= 0 then invalid_arg "Mt19937_64.next_below: bound must be positive";
  (* Rejection sampling on the low 62 bits keeps the distribution uniform. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (next_u64 t) mask) in
    let v = r mod n in
    if r - v > (1 lsl 62) - n then draw () else v
  in
  draw ()

let next_float t =
  (* 53-bit resolution, as in the reference genrand64_real2. *)
  let x = Int64.shift_right_logical (next_u64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = next_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
