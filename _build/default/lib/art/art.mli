(** Adaptive Radix Tree (Leis et al., ICDE 2013) — the paper's primary
    performance competitor.

    A 256-ary radix tree with four adaptive node sizes (Node4, Node16,
    Node48, Node256), pessimistic path compression (the full compressed
    prefix is stored), and leaves holding complete keys.  Keys that are
    proper prefixes of other keys terminate in a per-node terminal leaf,
    the standard generalization for arbitrary binary keys.

    The SIMD comparison the original uses for Node16 is a linear scan here
    (DESIGN.md substitutions); the asymptotics and node layouts match.

    Memory accounting offers the paper's three models (Section 4.1):
    ART (external key/value array, counted without padding), ARTC (libart:
    one heap allocation per leaf embedding the key), and ARTopt (the
    theoretical lower bound with up-to-8-byte values inlined into nodes). *)

include Kvcommon.Kv_intf.S

type model = Ext  (** external k/v array: the paper's "ART" *)
           | Leafalloc  (** per-leaf heap allocations: "ARTC" *)
           | Opt  (** theoretical inline-value lower bound: "ARTopt" *)

val memory_usage_model : t -> model -> int
(** {!memory_usage} is [memory_usage_model t Ext]. *)

val node_histogram : t -> int * int * int * int
(** Counts of (Node4, Node16, Node48, Node256) inner nodes — the paper
    discusses the Node16->48->256 transition dents in Figure 15. *)
