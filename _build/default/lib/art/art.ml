type leaf = { mutable lkey : string; mutable lvalue : int64 }

type node = Leaf of leaf | Inner of inner

and inner = {
  mutable prefix : string;  (* pessimistic path compression: full prefix *)
  mutable term : leaf option;  (* key ending exactly at this node *)
  mutable kind : kind;
}

and kind =
  | N4 of small
  | N16 of small
  | N48 of { mutable index : Bytes.t; mutable slots : node option array }
  | N256 of { mutable kids256 : node option array }

and small = { mutable keys : Bytes.t; mutable kids : node option array; mutable n : int }

type t = {
  mutable root : node option;
  mutable count : int;
  mutable key_bytes : int;
}

let name = "ART"

let create () = { root = None; count = 0; key_bytes = 0 }

(* ---- node-kind helpers ---- *)


let find_child inner c =
  match inner.kind with
  | N4 s | N16 s ->
      let rec go i =
        if i >= s.n then None
        else if Bytes.get_uint8 s.keys i = c then s.kids.(i)
        else go (i + 1)
      in
      go 0
  | N48 n ->
      let slot = Bytes.get_uint8 n.index c in
      if slot = 0 then None else n.slots.(slot - 1)
  | N256 n -> n.kids256.(c)

let set_child inner c child =
  match inner.kind with
  | N4 s | N16 s ->
      let rec go i =
        if i >= s.n then assert false
        else if Bytes.get_uint8 s.keys i = c then s.kids.(i) <- Some child
        else go (i + 1)
      in
      go 0
  | N48 n ->
      let slot = Bytes.get_uint8 n.index c in
      assert (slot <> 0);
      n.slots.(slot - 1) <- Some child
  | N256 n -> n.kids256.(c) <- Some child

let child_count inner =
  match inner.kind with
  | N4 s | N16 s -> s.n
  | N48 n ->
      let c = ref 0 in
      Array.iter (fun k -> if k <> None then incr c) n.slots;
      !c
  | N256 n ->
      let c = ref 0 in
      Array.iter (fun k -> if k <> None then incr c) n.kids256;
      !c

let new_small cap = { keys = Bytes.make cap '\000'; kids = Array.make cap None; n = 0 }

let new_n4 prefix = { prefix; term = None; kind = N4 (new_small 4) }

(* Grow to the next node size when full (paper Section 2.2). *)
let grow inner =
  match inner.kind with
  | N4 s when s.n >= 4 ->
      let s' = new_small 16 in
      Bytes.blit s.keys 0 s'.keys 0 s.n;
      Array.blit s.kids 0 s'.kids 0 s.n;
      s'.n <- s.n;
      inner.kind <- N16 s'
  | N16 s when s.n >= 16 ->
      let index = Bytes.make 256 '\000' in
      let slots = Array.make 48 None in
      for i = 0 to s.n - 1 do
        Bytes.set_uint8 index (Bytes.get_uint8 s.keys i) (i + 1);
        slots.(i) <- s.kids.(i)
      done;
      inner.kind <- N48 { index; slots }
  | N48 n when child_count inner >= 48 ->
      let kids256 = Array.make 256 None in
      for c = 0 to 255 do
        let slot = Bytes.get_uint8 n.index c in
        if slot <> 0 then kids256.(c) <- n.slots.(slot - 1)
      done;
      inner.kind <- N256 { kids256 }
  | _ -> ()

let add_child inner c child =
  (match inner.kind with
  | N4 s when s.n >= 4 -> grow inner
  | N16 s when s.n >= 16 -> grow inner
  | N48 _ when child_count inner >= 48 -> grow inner
  | _ -> ());
  match inner.kind with
  | N4 s | N16 s ->
      (* keep keys sorted for ordered iteration *)
      let pos = ref s.n in
      while !pos > 0 && Bytes.get_uint8 s.keys (!pos - 1) > c do
        Bytes.set_uint8 s.keys !pos (Bytes.get_uint8 s.keys (!pos - 1));
        s.kids.(!pos) <- s.kids.(!pos - 1);
        decr pos
      done;
      Bytes.set_uint8 s.keys !pos c;
      s.kids.(!pos) <- Some child;
      s.n <- s.n + 1
  | N48 n ->
      let rec free_slot i = if n.slots.(i) = None then i else free_slot (i + 1) in
      let slot = free_slot 0 in
      n.slots.(slot) <- Some child;
      Bytes.set_uint8 n.index c (slot + 1)
  | N256 n -> n.kids256.(c) <- Some child

let remove_child inner c =
  match inner.kind with
  | N4 s | N16 s ->
      let rec find i = if Bytes.get_uint8 s.keys i = c then i else find (i + 1) in
      let i = find 0 in
      for j = i to s.n - 2 do
        Bytes.set_uint8 s.keys j (Bytes.get_uint8 s.keys (j + 1));
        s.kids.(j) <- s.kids.(j + 1)
      done;
      s.kids.(s.n - 1) <- None;
      s.n <- s.n - 1
  | N48 n ->
      let slot = Bytes.get_uint8 n.index c in
      assert (slot <> 0);
      n.slots.(slot - 1) <- None;
      Bytes.set_uint8 n.index c 0
  | N256 n -> n.kids256.(c) <- None

(* Shrink to a smaller node kind on underflow. *)
let shrink inner =
  match inner.kind with
  | N16 s when s.n <= 3 ->
      let s' = new_small 4 in
      Bytes.blit s.keys 0 s'.keys 0 s.n;
      Array.blit s.kids 0 s'.kids 0 s.n;
      s'.n <- s.n;
      inner.kind <- N4 s'
  | N48 n when child_count inner <= 12 ->
      let s' = new_small 16 in
      for c = 0 to 255 do
        let slot = Bytes.get_uint8 n.index c in
        if slot <> 0 then begin
          Bytes.set_uint8 s'.keys s'.n c;
          s'.kids.(s'.n) <- n.slots.(slot - 1);
          s'.n <- s'.n + 1
        end
      done;
      inner.kind <- N16 s'
  | N256 n when child_count inner <= 36 ->
      let index = Bytes.make 256 '\000' in
      let slots = Array.make 48 None in
      let next = ref 0 in
      for c = 0 to 255 do
        match n.kids256.(c) with
        | Some k ->
            slots.(!next) <- Some k;
            Bytes.set_uint8 index c (!next + 1);
            incr next
        | None -> ()
      done;
      inner.kind <- N48 { index; slots }
  | _ -> ()

(* ---- search ---- *)

let common_prefix_len a apos b bpos =
  let n = min (String.length a - apos) (String.length b - bpos) in
  let rec go i = if i < n && a.[apos + i] = b.[bpos + i] then go (i + 1) else i in
  go 0

let rec search node key depth =
  match node with
  | Leaf l -> if l.lkey = key then Some l else None
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then None
      else
        let depth = depth + plen in
        if depth = String.length key then inner.term
        else begin
          match find_child inner (Char.code key.[depth]) with
          | Some child -> search child key (depth + 1)
          | None -> None
        end

let get t key =
  match t.root with
  | None -> None
  | Some root -> ( match search root key 0 with Some l -> Some l.lvalue | None -> None)

let mem t key = get t key <> None

(* ---- insert ---- *)

let rec insert t parent_set node key value depth =
  match node with
  | Leaf l ->
      if l.lkey = key then l.lvalue <- value
      else begin
        (* split: new Node4 covering the common part *)
        let m = common_prefix_len key depth l.lkey depth in
        let n4 = new_n4 (String.sub key depth m) in
        let inner = n4 in
        let place lf =
          let k = lf.lkey in
          if String.length k = depth + m then inner.term <- Some lf
          else add_child inner (Char.code k.[depth + m]) (Leaf lf)
        in
        place l;
        let nl = { lkey = key; lvalue = value } in
        place nl;
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        parent_set (Inner inner)
      end
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then begin
        (* prefix mismatch: split the compressed path *)
        let top = new_n4 (String.sub inner.prefix 0 m) in
        let rest_first = Char.code inner.prefix.[m] in
        inner.prefix <- String.sub inner.prefix (m + 1) (plen - m - 1);
        add_child top rest_first (Inner inner);
        (if depth + m = String.length key then
           top.term <- Some { lkey = key; lvalue = value }
         else
           add_child top
             (Char.code key.[depth + m])
             (Leaf { lkey = key; lvalue = value }));
        t.count <- t.count + 1;
        t.key_bytes <- t.key_bytes + String.length key;
        parent_set (Inner top)
      end
      else begin
        let depth = depth + plen in
        if depth = String.length key then begin
          match inner.term with
          | Some l -> l.lvalue <- value
          | None ->
              inner.term <- Some { lkey = key; lvalue = value };
              t.count <- t.count + 1;
              t.key_bytes <- t.key_bytes + String.length key
        end
        else begin
          let c = Char.code key.[depth] in
          match find_child inner c with
          | Some child ->
              insert t (fun n -> set_child inner c n) child key value (depth + 1)
          | None ->
              add_child inner c (Leaf { lkey = key; lvalue = value });
              t.count <- t.count + 1;
              t.key_bytes <- t.key_bytes + String.length key
        end
      end

let put t key value =
  match t.root with
  | None ->
      t.root <- Some (Leaf { lkey = key; lvalue = value });
      t.count <- 1;
      t.key_bytes <- String.length key
  | Some root -> insert t (fun n -> t.root <- Some n) root key value 0

(* ---- delete ---- *)

(* Merge a single-child, term-less Node4 into its child (restores path
   compression after deletions). *)
let compress inner =
  match inner.kind with
  | N4 s when s.n = 1 && inner.term = None -> (
      let c = Bytes.get_uint8 s.keys 0 in
      match s.kids.(0) with
      | Some (Inner child) ->
          child.prefix <-
            inner.prefix ^ String.make 1 (Char.chr c) ^ child.prefix;
          Some (Inner child)
      | Some (Leaf l) -> Some (Leaf l)
      | None -> assert false)
  | N4 s when s.n = 0 -> (
      match inner.term with Some l -> Some (Leaf l) | None -> None)
  | _ -> None

let rec remove t parent_set node key depth =
  match node with
  | Leaf l ->
      if l.lkey = key then begin
        parent_set None;
        true
      end
      else false
  | Inner inner ->
      let plen = String.length inner.prefix in
      let m = common_prefix_len key depth inner.prefix 0 in
      if m < plen then false
      else begin
        let depth = depth + plen in
        let removed =
          if depth = String.length key then begin
            match inner.term with
            | Some _ ->
                inner.term <- None;
                true
            | None -> false
          end
          else begin
            let c = Char.code key.[depth] in
            match find_child inner c with
            | Some child ->
                remove t
                  (fun n ->
                    match n with
                    | Some n -> set_child inner c n
                    | None -> remove_child inner c)
                  child key (depth + 1)
            | None -> false
          end
        in
        if removed then begin
          shrink inner;
          match compress inner with
          | Some replacement -> parent_set (Some replacement)
          | None ->
              if child_count inner = 0 && inner.term = None then parent_set None
        end;
        removed
      end

let delete t key =
  match t.root with
  | None -> false
  | Some root ->
      let removed =
        remove t
          (fun n -> t.root <- n)
          root key 0
      in
      if removed then begin
        t.count <- t.count - 1;
        t.key_bytes <- t.key_bytes - String.length key
      end;
      removed

(* ---- ordered iteration ---- *)

exception Stop

let iter_children inner f =
  match inner.kind with
  | N4 s | N16 s ->
      for i = 0 to s.n - 1 do
        match s.kids.(i) with Some k -> f k | None -> ()
      done
  | N48 n ->
      for c = 0 to 255 do
        let slot = Bytes.get_uint8 n.index c in
        if slot <> 0 then
          match n.slots.(slot - 1) with Some k -> f k | None -> ()
      done
  | N256 n ->
      for c = 0 to 255 do
        match n.kids256.(c) with Some k -> f k | None -> ()
      done

let range t ?(start = "") f =
  let rec visit node =
    match node with
    | Leaf l ->
        if String.compare l.lkey start >= 0 && not (f l.lkey (Some l.lvalue))
        then raise Stop
    | Inner inner ->
        (match inner.term with
        | Some l ->
            if String.compare l.lkey start >= 0 && not (f l.lkey (Some l.lvalue))
            then raise Stop
        | None -> ());
        iter_children inner visit
  in
  match t.root with
  | None -> ()
  | Some root -> ( try visit root with Stop -> ())

let length t = t.count

(* ---- memory models (paper Section 4.1) ---- *)

type model = Ext | Leafalloc | Opt

let node_sizes t =
  let n4 = ref 0 and n16 = ref 0 and n48 = ref 0 and n256 = ref 0 in
  let prefix_bytes = ref 0 in
  let rec go = function
    | Leaf _ -> ()
    | Inner inner ->
        prefix_bytes := !prefix_bytes + String.length inner.prefix;
        (match inner.kind with
        | N4 _ -> incr n4
        | N16 _ -> incr n16
        | N48 _ -> incr n48
        | N256 _ -> incr n256);
        iter_children inner go
  in
  (match t.root with Some r -> go r | None -> ());
  (!n4, !n16, !n48, !n256, !prefix_bytes)

let node_histogram t =
  let n4, n16, n48, n256, _ = node_sizes t in
  (n4, n16, n48, n256)

let memory_usage_model t model =
  let n4, n16, n48, n256, _prefix = node_sizes t in
  (* Leis et al. node sizes: 16-byte header (type, child count, compressed
     path) plus key and child-pointer arrays. *)
  let inner_bytes =
    (n4 * Kvcommon.Mem_model.malloc (16 + 4 + (4 * 8)))
    + (n16 * Kvcommon.Mem_model.malloc (16 + 16 + (16 * 8)))
    + (n48 * Kvcommon.Mem_model.malloc (16 + 256 + (48 * 8)))
    + (n256 * Kvcommon.Mem_model.malloc (16 + (256 * 8)))
  in
  match model with
  | Ext ->
      (* leaves are tagged pointers into an external k/v array accounted
         without padding or metadata (paper Section 4.1) *)
      inner_bytes + (t.count * 8) + t.key_bytes
  | Leafalloc ->
      (* libart: art_leaf { void *value; u32 key_len; u8 key[] } per leaf,
         plus a heap cell for each 8-byte value *)
      inner_bytes
      + (t.count * Kvcommon.Mem_model.malloc (8 + 4))
      + Kvcommon.Mem_model.malloc t.key_bytes
      + (t.count * Kvcommon.Mem_model.malloc 8)
  | Opt ->
      (* theoretical lower bound: values up to 8 bytes stored inside the
         nodes, keys not materialized (paper's ARTopt) *)
      inner_bytes + (t.count * 8)

let memory_usage t = memory_usage_model t Ext
