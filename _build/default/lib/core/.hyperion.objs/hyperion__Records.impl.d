lib/core/records.ml: Bytes Hp Layout Node
