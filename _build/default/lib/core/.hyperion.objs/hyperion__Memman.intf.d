lib/core/memman.mli: Bytes Hp
