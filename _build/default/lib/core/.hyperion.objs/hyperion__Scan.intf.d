lib/core/scan.mli: Records Types
