lib/core/memman.ml: Array Bitset Bytes Hp List
