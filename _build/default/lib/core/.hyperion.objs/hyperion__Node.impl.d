lib/core/node.ml:
