lib/core/types.ml: Bytes Config Hp Layout Memman
