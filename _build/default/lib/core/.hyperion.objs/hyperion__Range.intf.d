lib/core/range.mli: Types
