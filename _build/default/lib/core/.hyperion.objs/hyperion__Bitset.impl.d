lib/core/bitset.ml: Array
