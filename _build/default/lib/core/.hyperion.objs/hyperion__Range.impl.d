lib/core/range.ml: Buffer Bytes Char Hp Memman Node Records String Types
