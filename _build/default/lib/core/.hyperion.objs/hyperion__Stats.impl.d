lib/core/stats.ml: Bytes Hp Layout Memman Node Records Types
