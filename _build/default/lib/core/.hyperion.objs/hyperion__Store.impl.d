lib/core/store.ml: Array Char Config Fun Hp Memman Mutex Ops Option Preprocess Range Stats String Types
