lib/core/ops.ml: Array Bytes Char Config Encode Hp Layout List Memman Node Records Scan Splice String Types
