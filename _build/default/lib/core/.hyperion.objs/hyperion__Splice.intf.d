lib/core/splice.mli: Bytes Hp Types
