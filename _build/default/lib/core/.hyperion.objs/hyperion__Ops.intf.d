lib/core/ops.mli: Config Types
