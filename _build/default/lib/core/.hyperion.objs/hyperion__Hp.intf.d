lib/core/hp.mli: Bytes Format
