lib/core/preprocess.ml: Bytes Char String
