lib/core/records.mli: Bytes
