lib/core/layout.ml: Bytes
