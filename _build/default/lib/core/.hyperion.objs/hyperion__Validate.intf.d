lib/core/validate.mli: Format Store Types
