lib/core/encode.ml: Buffer Bytes Char Hp Node Records Splice String Types
