lib/core/store.mli: Config Memman Stats Types
