lib/core/node.mli:
