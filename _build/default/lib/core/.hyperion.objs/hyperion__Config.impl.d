lib/core/config.ml:
