lib/core/scan.ml: Bytes Layout Node Records Types
