lib/core/splice.ml: Bytes Hp Layout List Memman Node Records String Types
