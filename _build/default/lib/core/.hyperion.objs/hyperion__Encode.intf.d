lib/core/encode.mli: Bytes Hp Node Types
