lib/core/config.mli:
