lib/core/preprocess.mli:
