lib/core/layout.mli: Bytes
