lib/core/stats.mli: Types
