lib/core/bitset.mli:
