lib/core/validate.ml: Array Bytes Format Hp Layout List Memman Node Printf Records Store Types
