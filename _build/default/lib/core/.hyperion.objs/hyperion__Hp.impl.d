lib/core/hp.ml: Bytes Format Printf
