(** Structural integrity checking for Hyperion tries.

    Walks every container reachable from the root and verifies the
    invariants the engine relies on:

    - container headers: size within the 19-bit limit, free tail within
      the 8-bit limit, [size - free] consistent with parsed content;
    - records: strictly ascending sibling keys at both levels, delta
      fields decodable (first sibling explicit), value fields only on
      type-11 nodes;
    - the free tail and over-allocated memory are zeroed (the scan
      algorithm depends on it, paper Fig. 8);
    - jump successors point exactly at the next T-record (or content end);
    - jump-table entries reference records with the stored key;
    - container jump-table entries reference T-records with the stored key;
    - embedded containers: header size matches their parsed extent,
      nesting within the 255-byte budget;
    - path-compressed nodes within the 127-byte limit;
    - split containers: populated CEB slots hold containers whose T-keys
      lie within the slot's responsibility range;
    - every HP resolves through the memory manager.

    Used by the test suite after every phase of randomized workloads;
    exposed publicly because downstream users embedding Hyperion want the
    same check in their own harnesses. *)

type error = { context : string; message : string }

val check : Types.trie -> error list
(** All violations found (empty = structurally sound). *)

val check_store : Store.t -> error list
(** Check every trie of a store (all arenas). *)

val pp_error : Format.formatter -> error -> unit
