open Types

type error = { context : string; message : string }

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.context e.message

type acc = {
  mutable errors : error list;
  mutable visited : int;
  trie : trie;
}

let err acc context fmt =
  Printf.ksprintf
    (fun message -> acc.errors <- { context; message } :: acc.errors)
    fmt

let max_containers = 10_000_000

(* Walk the S-children of a T-record, collecting (key, position); returns
   the end position.  Parsing is defensive: a malformed record aborts the
   walk with an error instead of raising. *)
let rec check_region acc buf ~rb ~re ~top ~ctx =
  let t_positions = ref [] in
  let pos = ref rb and prev = ref (-1) in
  let ok = ref true in
  while !ok && !pos < re do
    let flag = Bytes.get_uint8 buf !pos in
    if flag = 0 then begin
      err acc ctx "invalid (zero) flag byte inside content at +%d" (!pos - rb);
      ok := false
    end
    else if Node.is_snode flag then begin
      err acc ctx "S-node record at T level at +%d" (!pos - rb);
      ok := false
    end
    else begin
      match Records.parse_t buf !pos ~prev_key:!prev with
      | exception Invalid_argument m ->
          err acc ctx "unparsable T record at +%d: %s" (!pos - rb) m;
          ok := false
      | t ->
          if t.Records.t_key <= !prev then begin
            err acc ctx "T keys not ascending at +%d (%d after %d)" (!pos - rb)
              t.Records.t_key !prev;
            ok := false
          end
          else if t.Records.t_key > 255 then begin
            err acc ctx "T key %d out of byte range (bad delta chain)"
              t.Records.t_key;
            ok := false
          end
          else begin
            t_positions := (t.Records.t_key, !pos) :: !t_positions;
            if (not top) && (t.Records.t_js_pos >= 0 || t.Records.t_jt_pos >= 0)
            then
              err acc ctx "jump fields inside an embedded container at +%d"
                (!pos - rb);
            if
              Node.typ_of_flag t.Records.t_flag = Node.Invalid
            then err acc ctx "invalid T type at +%d" (!pos - rb);
            let children_end, s_index =
              check_children acc buf ~t ~re ~ctx
            in
            (* a pure inner T must have children *)
            if
              Node.typ_of_flag t.Records.t_flag = Node.Inner
              && children_end = t.Records.t_head_end
            then err acc ctx "inner T %d has no children" t.Records.t_key;
            (* jump successor must land exactly on the next record *)
            if t.Records.t_js_pos >= 0 then begin
              let off = Records.read_u16 buf t.Records.t_js_pos in
              let target = t.Records.t_pos + off in
              if target <> min re children_end && target <> children_end then
                err acc ctx "T %d jump successor points at +%d, children end +%d"
                  t.Records.t_key (target - rb) (children_end - rb)
            end;
            (* jump-table entries must name existing S records *)
            if t.Records.t_jt_pos >= 0 then
              for i = 0 to Node.jt_entries - 1 do
                let key, off = Records.jt_entry buf t.Records.t_jt_pos i in
                if off <> 0 then begin
                  let target = t.Records.t_pos + off in
                  match List.assoc_opt target s_index with
                  | Some k when k = key -> ()
                  | Some k ->
                      err acc ctx "T %d jt entry %d: key %d but record has %d"
                        t.Records.t_key i key k
                  | None ->
                      err acc ctx "T %d jt entry %d points at +%d: no S record"
                        t.Records.t_key i (target - rb)
                end
              done;
            pos := children_end;
            prev := t.Records.t_key
          end
    end
  done;
  List.rev !t_positions

(* Check the S-records under [t]; returns (end position, [(abs position,
   key)] index). *)
and check_children acc buf ~t ~re ~ctx =
  let pos = ref t.Records.t_head_end and prev = ref (-1) in
  let index = ref [] in
  let ok = ref true in
  while
    !ok && !pos < re
    &&
    let flag = Bytes.get_uint8 buf !pos in
    flag <> 0 && Node.is_snode flag
  do
    match Records.parse_s buf !pos ~prev_key:!prev with
    | exception Invalid_argument m ->
        err acc ctx "unparsable S record at +%d: %s" !pos m;
        ok := false
    | s ->
        index := (!pos, s.Records.s_key) :: !index;
        if s.Records.s_key <= !prev then begin
          err acc ctx "S keys not ascending under T %d (%d after %d)"
            t.Records.t_key s.Records.s_key !prev;
          ok := false
        end
        else begin
          let styp = Node.typ_of_flag s.Records.s_flag in
          if styp = Node.Invalid then
            err acc ctx "invalid S type under T %d" t.Records.t_key;
          (match Node.child_of_flag s.Records.s_flag with
          | Node.No_child ->
              if styp = Node.Inner then
                err acc ctx "inner S %d/%d without child" t.Records.t_key
                  s.Records.s_key
          | Node.Child_hp ->
              let hp = Hp.read buf s.Records.s_head_end in
              if Hp.is_null hp then
                err acc ctx "null child HP at S %d/%d" t.Records.t_key
                  s.Records.s_key
              else check_child_container acc hp ~ctx
          | Node.Child_embedded ->
              let e_pos = s.Records.s_head_end in
              let size = Layout.emb_total_size buf e_pos in
              if size < 1 then
                err acc ctx "embedded container with zero size at S %d/%d"
                  t.Records.t_key s.Records.s_key
              else
                ignore
                  (check_region acc buf ~rb:(e_pos + 1) ~re:(e_pos + size)
                     ~top:false
                     ~ctx:(Printf.sprintf "%s/emb@%d.%d" ctx t.Records.t_key
                             s.Records.s_key))
          | Node.Child_pc ->
              let pc = Records.parse_pc buf s.Records.s_head_end in
              if pc.Records.pc_suffix_len < 1 || pc.Records.pc_suffix_len > 127
              then
                err acc ctx "PC suffix length %d out of [1,127]"
                  pc.Records.pc_suffix_len);
          prev := s.Records.s_key;
          pos := s.Records.s_end
        end
  done;
  (!pos, !index)

and check_top acc buf base ~cap ~ctx =
  let size = Layout.read_size buf base in
  let free = Layout.read_free buf base in
  if size > cap then err acc ctx "header size %d exceeds chunk capacity %d" size cap;
  if size - free < Layout.payload_start buf base then
    err acc ctx "content end before payload start";
  (* zeroed free tail: the scan algorithm depends on it *)
  let content = size - free in
  for i = content to size - 1 do
    if Bytes.get_uint8 buf (base + i) <> 0 then
      err acc ctx "free tail byte at +%d not zero" i
  done;
  let rb = base + Layout.payload_start buf base in
  let re = base + content in
  let ts = check_region acc buf ~rb ~re ~top:true ~ctx in
  (* container jump-table entries must name existing T records *)
  let cnt = Layout.jt_count buf base in
  for i = 0 to cnt - 1 do
    let key, off = Layout.jt_read buf base i in
    if off <> 0 then begin
      match List.find_opt (fun (_, p) -> p = base + off) ts with
      | Some (k, _) when k = key -> ()
      | Some (k, _) ->
          err acc ctx "container jt entry %d: key %d but T record has %d" i key k
      | None -> err acc ctx "container jt entry %d: no T record at +%d" i off
    end
  done;
  ts

and check_child_container acc hp ~ctx =
  acc.visited <- acc.visited + 1;
  if acc.visited > max_containers then
    err acc ctx "container count exceeds %d (cycle?)" max_containers
  else begin
    let mm = acc.trie.mm in
    if Memman.is_chained mm hp then begin
      let prev_slot_keys = ref (-1) in
      for slot = 0 to 7 do
        match Memman.ceb_slot mm hp ~slot with
        | Some (buf, off, cap) ->
            let ts =
              check_top acc buf off ~cap
                ~ctx:(Printf.sprintf "%s/slot%d" ctx slot)
            in
            (* slot responsibility: T keys at or above the slot's range
               start, and above every key of earlier slots *)
            List.iter
              (fun (k, _) ->
                if k < 32 * slot then
                  err acc ctx "slot %d holds T key %d below its range" slot k;
                if k <= !prev_slot_keys then
                  err acc ctx "slot %d key %d overlaps earlier slot" slot k)
              ts;
            List.iter (fun (k, _) -> prev_slot_keys := max !prev_slot_keys k) ts
        | None -> ()
      done
    end
    else begin
      match Memman.resolve mm hp with
      | exception Invalid_argument m -> err acc ctx "dangling HP: %s" m
      | buf, base ->
          let cap = Memman.capacity mm hp in
          ignore (check_top acc buf base ~cap ~ctx)
    end
  end

let check trie =
  let acc = { errors = []; visited = 0; trie } in
  if not (Hp.is_null trie.root) then check_child_container acc trie.root ~ctx:"root";
  List.rev acc.errors

let check_store store =
  Array.to_list (Store.internal_tries store)
  |> List.concat_map (fun trie -> check trie)
