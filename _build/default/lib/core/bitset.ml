let word_bits = 63

type t = {
  words : int array;
  n : int;
  mutable set_count : int;
}

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + word_bits - 1) / word_bits) 0; n; set_count = 0 }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let set t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  if t.words.(w) land (1 lsl b) = 0 then begin
    t.words.(w) <- t.words.(w) lor (1 lsl b);
    t.set_count <- t.set_count + 1
  end

let clear t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  if t.words.(w) land (1 lsl b) <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot (1 lsl b);
    t.set_count <- t.set_count - 1
  end

let count_set t = t.set_count

let full_word = (1 lsl word_bits) - 1

let find_clear t =
  let nw = Array.length t.words in
  let rec scan_word w =
    if w >= nw then None
    else if t.words.(w) = full_word then scan_word (w + 1)
    else
      let base = w * word_bits in
      let rec scan_bit b =
        if b >= word_bits then scan_word (w + 1)
        else
          let i = base + b in
          if i >= t.n then None
          else if t.words.(w) land (1 lsl b) = 0 then Some i
          else scan_bit (b + 1)
      in
      scan_bit 0
  in
  scan_word 0

let find_clear_run t k =
  if k <= 0 then invalid_arg "Bitset.find_clear_run";
  let rec scan i run_start run_len =
    if run_len = k then Some run_start
    else if i >= t.n then None
    else if mem t i then scan (i + 1) (i + 1) 0
    else scan (i + 1) run_start (run_len + 1)
  in
  scan 0 0 0
