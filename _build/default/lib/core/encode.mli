(** Pure builders for record byte fragments and for the child encodings of
    key suffixes: path-compressed nodes, (recursively) embedded containers
    and real child containers (paper Section 3.1).

    The builders apply delta encoding whenever the gap to the preceding
    sibling fits the 3-bit delta field (Section 3.3). *)

val delta_for : prev_key:int -> key:int -> int
(** The delta to store: [key - prev_key] when [prev_key >= 0] and the gap
    is in [1, 7], else 0 (explicit key byte). *)

val t_record :
  prev_key:int -> key:int -> typ:Node.typ -> value:int64 option -> string
(** A fresh T-node record head (no jump successor / jump table).  [value]
    must be [Some] iff [typ] is [Leaf_value]. *)

val s_record :
  prev_key:int ->
  key:int ->
  typ:Node.typ ->
  value:int64 option ->
  child:Node.child ->
  string
(** A fresh S-node record head; the child body is appended by the caller. *)

val pc_body : string -> int64 option -> string
(** Path-compressed child body for a suffix of length in [1, 127]. *)

val hp_body : Hp.t -> string
(** 5-byte HP child body. *)

val re_encode_head : Bytes.t -> int -> key:int -> new_prev:int -> string * int
(** [re_encode_head buf pos ~key ~new_prev] re-encodes the flag/key
    fragment of the record at [pos] (whose decoded key byte is [key])
    against a new preceding sibling ([-1] = none): returns the replacement
    fragment and the size difference vs. the old fragment (-1, 0 or +1).
    Used when inserting or removing a sibling changes a record's
    predecessor. *)

val head_frag_size : int -> int
(** Size of a record's flag/key fragment for a given flag byte (1 or 2). *)

val make_child :
  ?dry:bool -> Types.trie -> string -> int64 option -> Node.child * string
(** [make_child trie suffix value] encodes a child holding the whole
    [suffix] (length >= 1) terminating with [value]: a path-compressed
    node when the suffix fits, otherwise an embedded container (recursing),
    otherwise a real container chain allocated through the trie's memory
    manager (returning a 5-byte HP body).  With [~dry:true] no container is
    allocated but the returned body has the exact final length — used to
    size an insertion before committing to it. *)

val value_string : int64 -> string
(** 8-byte little-endian encoding of a value. *)

val region_for : Types.trie -> string -> int64 option -> string
(** Full region content (a T record, optionally with an S record and child)
    indexing exactly one key [suffix] (length >= 1). *)
