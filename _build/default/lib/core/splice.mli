(** Order-preserving byte splicing inside a container (paper Sections 3.1
    and 3.3: exact-fit growth in 32-byte increments, shifting of byte-array
    segments, zero-initialization of vacated memory, and offset maintenance
    for jump successors and jump tables).

    All positions are absolute offsets into the container's current buffer;
    a splice invalidates every previously derived position, so callers
    re-navigate afterwards. *)

val round32 : int -> int
(** Round up to the trie's 32-byte growth granularity. *)

val open_container :
  Types.trie -> Hp.t -> tkey:int -> where:Types.where -> Types.cbox
(** Resolve a container HP.  When the HP designates a chained extended bin,
    the slot responsible for T-node key [tkey] is opened (paper Fig. 11). *)

val refresh : Types.cbox -> unit
(** Re-derive [buf]/[base] after an operation that may have moved the
    container. *)

val new_container : Types.trie -> string -> Hp.t
(** Allocate a fresh container holding the given record content, with a
    32-byte-granular exact-fit size. *)

val container_size : Types.cbox -> int
(** Current size field of the open container. *)

val splice :
  Types.cbox ->
  emb_chain:Types.emb_chain ->
  at:int ->
  remove:int ->
  ins:string ->
  keep_at:bool ->
  unit
(** Replace the [remove] bytes at [at] with [ins], growing or shrinking the
    container as needed (the container may move; parent HP slots are
    patched through [cbox.where]).  Enclosing embedded-container sizes in
    [emb_chain] are adjusted; the caller must have verified they stay
    within bounds.  Jump-successor offsets, T-node jump tables and the
    container jump table are patched: [keep_at] declares that the inserted
    bytes start a new T-sibling record, so jump successors pointing exactly
    at [at] keep pointing there (the new record becomes the successor). *)

val adjust_record_offsets : Bytes.t -> int -> int -> unit
(** [adjust_record_offsets buf t_pos d] adds [d] to the jump-successor and
    jump-table offsets of the T-node record at [t_pos] — used after a
    splice changed the size of the record's own flag/key fragment, which
    shifts its interior fields relative to the record start. *)
