(** T-node and S-node flag-byte codec (paper Section 3.1, Figure 5).

    Every record inside a container starts with one flag byte:

    - bits 0–1: node type [t] — 00 invalid (zeroed over-allocated tail),
      01 inner node, 10 terminal without value, 11 terminal with value;
    - bit 2: partial-key index [k] — 0 for T-nodes (first 8 bits of the
      16-bit partial key), 1 for S-nodes (second 8 bits);
    - bits 3–5: delta [d] — when non-zero the record's key byte is
      [previous sibling's key + d] and no explicit key byte is stored;
    - T-nodes: bit 6 [js] jump-successor present, bit 7 [jt] T-node jump
      table present;
    - S-nodes: bits 6–7 child flag [c] — 00 no child, 01 Hyperion Pointer,
      10 embedded container, 11 path-compressed node.

    Record layout after the flag byte:
    T-node: [key byte if d=0] [js: u16 offset] [jt: 15 × (key u8, offset
    u16)] [value: 8 bytes if t=11], then its S-node children.
    S-node: [key byte if d=0] [value: 8 bytes if t=11], then the child body
    (nothing / 5-byte HP / embedded container / PC node).

    Deviation from the paper documented in DESIGN.md: T-node jump-table
    entries carry the target's key byte (3 bytes per entry instead of 2),
    which makes jump targets decodable without forcing synthetic
    destination nodes. *)

type typ = Invalid | Inner | Leaf_no_value | Leaf_value

type child = No_child | Child_hp | Child_embedded | Child_pc

val typ_code : typ -> int
val typ_of_code : int -> typ

(** {1 Flag-byte accessors} *)

val typ_of_flag : int -> typ
val is_snode : int -> bool
val delta_of_flag : int -> int
val has_js : int -> bool
(** T-nodes only. *)

val has_jt : int -> bool
(** T-nodes only. *)

val child_of_flag : int -> child
(** S-nodes only. *)

val t_flag : typ:typ -> delta:int -> js:bool -> jt:bool -> int
val s_flag : typ:typ -> delta:int -> child:child -> int

val with_typ : int -> typ -> int
(** Same flag byte with the type field replaced. *)

val with_child : int -> child -> int
(** Same S-node flag byte with the child field replaced. *)

val with_js : int -> bool -> int
val with_jt : int -> bool -> int
val with_delta : int -> int -> int

(** {1 Field sizes} *)

val value_size : int
(** 8 — values are 64-bit words. *)

val js_size : int
(** 2 — jump-successor offset (u16). *)

val jt_entries : int
(** 15 — S-node references per T-node jump table. *)

val jt_size : int
(** Bytes of a T-node jump table (15 entries × 3). *)

val t_head_size : int -> int
(** [t_head_size flag] is the byte size of a T-node record head (flag,
    optional key byte, js, jt, value) — everything before its S-children. *)

val s_head_size : int -> int
(** [s_head_size flag] is the byte size of an S-node record head (flag,
    optional key byte, value) — everything before the child body. *)

(** {1 Path-compressed node header} *)

val pc_header : len:int -> has_value:bool -> int
(** One byte: bit 7 = value attached, bits 0–6 = suffix length (1..127). *)

val pc_len : int -> int
val pc_has_value : int -> bool

val pc_body_size : int -> int
(** Total PC body bytes for a given header byte: header + optional value +
    suffix. *)
