(** Hyperion Pointers (paper Section 3.2, Figure 9).

    A Hyperion Pointer (HP) is the 5-byte handle the trie stores instead of
    an 8-byte virtual-memory pointer.  Its 40 bits name a chunk through the
    memory-manager hierarchy: superbin (6 bits), metabin (14 bits), bin
    (8 bits), chunk (12 bits).  HPs fully decouple the trie from virtual
    memory: the memory manager is free to move chunks.

    Represented as a non-negative OCaml [int]; the all-zero HP is the null
    pointer (the memory manager never hands out superbin 0 / metabin 0 /
    bin 0 / chunk 0). *)

type t = int

val null : t
(** The null Hyperion Pointer (all 40 bits zero). *)

val is_null : t -> bool

val make : superbin:int -> metabin:int -> bin:int -> chunk:int -> t
(** Pack the four hierarchy indices.  @raise Invalid_argument if any index
    exceeds its field width. *)

val superbin : t -> int
val metabin : t -> int
val bin : t -> int
val chunk : t -> int

val byte_size : int
(** Bytes an HP occupies inside a container: 5. *)

val write : Bytes.t -> int -> t -> unit
(** [write buf off hp] stores the 5-byte little-endian representation. *)

val read : Bytes.t -> int -> t
(** [read buf off] decodes an HP previously stored with {!write}. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [sb.mb.bin.chunk]. *)
