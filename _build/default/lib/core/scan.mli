(** Linear pre-order scanning of a container region (paper Section 3.1,
    Figure 2d), accelerated by the container jump table and T-node jump
    tables when present (Section 3.3). *)

type t_result =
  | T_found of Records.tnode * int
      (** the record and its predecessor sibling's key (-1 when first) *)
  | T_insert of {
      t_at : int;  (** absolute insertion position *)
      t_prev_key : int;  (** preceding T-sibling key, -1 when none *)
      t_succ : Records.tnode option;
          (** the T record currently at the insertion position, whose
              delta field must be re-encoded against the new sibling *)
    }

type s_result =
  | S_found of Records.snode * int
  | S_insert of {
      s_at : int;
      s_prev_key : int;
      s_succ : Records.snode option;
    }

val find_t :
  ?use_jumps:bool ->
  Types.cbox ->
  Types.region ->
  int ->
  traversed:int ref ->
  t_result
(** Locate the T-node with key [k0] in the region, counting traversed
    T-records in [traversed] (drives container-jump-table growth).  Uses
    the container jump table for top regions unless [use_jumps] is false
    (deletions disable jumps because they need the exact predecessor; a
    jump would leave it unknown, reported as -1). *)

val find_s :
  ?use_jumps:bool ->
  ?scanned:int ref ->
  Types.cbox ->
  Types.region ->
  Records.tnode ->
  int ->
  s_result
(** Locate the S-node with key [k1] among the children of the given
    T-node, using its jump table when present (see [use_jumps] above).
    [scanned] counts the S-records examined after any jump — callers use
    it to decide when the jump table has gone stale and needs a refill. *)

val t_children_end : Types.cbox -> Types.region -> Records.tnode -> int
(** Absolute position one past the T-node's last S-child (the next
    T-record or the region end). *)

val count_s_children :
  ?cap:int -> Types.cbox -> Types.region -> Records.tnode -> int
(** Number of S-children (walk, ignoring jump shortcuts), stopping at
    [cap] — threshold checks never need the exact population. *)
