open Types

exception Stop

(* [bound] is the remaining lower-bound suffix under the current prefix:
   [None] = unconstrained, [Some b] = emit only keys whose remaining suffix
   is >= b.  [Some ""] is equivalent to [None]. *)

(* Remaining bound after consuming one matching byte; an exhausted bound
   means every following key qualifies. *)
let sub_bound b =
  if String.length b <= 1 then None
  else Some (String.sub b 1 (String.length b - 1))

let rec visit_container trie hp prefix bound emit =
  if Memman.is_chained trie.mm hp then
    for slot = 0 to 7 do
      match Memman.ceb_slot trie.mm hp ~slot with
      | Some (buf, off, _) ->
          visit_top trie buf off prefix bound emit
      | None -> ()
    done
  else begin
    let buf, base = Memman.resolve trie.mm hp in
    visit_top trie buf base prefix bound emit
  end

and visit_top trie buf base prefix bound emit =
  let region = top_region buf base in
  visit_region trie buf region.rb region.re prefix bound emit

and visit_region trie buf rb re prefix bound emit =
  let pos = ref rb and prev = ref (-1) in
  let bound = ref (match bound with Some "" -> None | b -> b) in
  while !pos < re do
    let t = Records.parse_t buf !pos ~prev_key:!prev in
    let tkey = t.Records.t_key in
    prev := tkey;
    let skip =
      match !bound with
      | Some b when Char.code b.[0] > tkey -> true
      | _ -> false
    in
    if not skip then begin
      let tbound =
        match !bound with
        | Some b when Char.code b.[0] = tkey -> sub_bound b
        | _ ->
            bound := None;
            None
      in
      Buffer.add_char prefix (Char.chr tkey);
      (match Node.typ_of_flag t.Records.t_flag with
      | Node.Leaf_no_value when tbound = None -> emit prefix None
      | Node.Leaf_value when tbound = None ->
          emit prefix (Some (Records.read_value buf t.Records.t_value_pos))
      | _ -> ());
      visit_children trie buf t re prefix tbound emit;
      Buffer.truncate prefix (Buffer.length prefix - 1)
    end;
    pos := Records.next_t_pos buf t ~limit:re
  done

and visit_children trie buf t re prefix bound emit =
  let limit = Records.next_t_pos buf t ~limit:re in
  let pos = ref t.Records.t_head_end and prev = ref (-1) in
  let bound = ref (match bound with Some "" -> None | b -> b) in
  while !pos < limit do
    let flag = Bytes.get_uint8 buf !pos in
    if flag = 0 || not (Node.is_snode flag) then pos := limit
    else begin
      let s = Records.parse_s buf !pos ~prev_key:!prev in
      let skey = s.Records.s_key in
      prev := skey;
      let skip =
        match !bound with
        | Some b when Char.code b.[0] > skey -> true
        | _ -> false
      in
      if not skip then begin
        let sbound =
          match !bound with
          | Some b when Char.code b.[0] = skey -> sub_bound b
          | _ ->
              bound := None;
              None
        in
        Buffer.add_char prefix (Char.chr skey);
        (match Node.typ_of_flag s.Records.s_flag with
        | Node.Leaf_no_value when sbound = None -> emit prefix None
        | Node.Leaf_value when sbound = None ->
            emit prefix (Some (Records.read_value buf s.Records.s_value_pos))
        | _ -> ());
        (match Node.child_of_flag s.Records.s_flag with
        | Node.No_child -> ()
        | Node.Child_pc ->
            let pc = Records.parse_pc buf s.Records.s_head_end in
            let suffix =
              Bytes.sub_string buf pc.Records.pc_suffix_pos
                pc.Records.pc_suffix_len
            in
            let ok =
              match sbound with None -> true | Some b -> String.compare suffix b >= 0
            in
            if ok then begin
              Buffer.add_string prefix suffix;
              let v =
                if pc.Records.pc_value_pos >= 0 then
                  Some (Records.read_value buf pc.Records.pc_value_pos)
                else None
              in
              emit prefix v;
              Buffer.truncate prefix (Buffer.length prefix - pc.Records.pc_suffix_len)
            end
        | Node.Child_embedded ->
            let r = emb_region buf s.Records.s_head_end in
            visit_region trie buf r.rb r.re prefix sbound emit
        | Node.Child_hp ->
            visit_container trie
              (Hp.read buf s.Records.s_head_end)
              prefix sbound emit);
        Buffer.truncate prefix (Buffer.length prefix - 1)
      end;
      pos := s.Records.s_end
    end
  done

let range trie ?start f =
  if not (Hp.is_null trie.root) then begin
    let prefix = Buffer.create 64 in
    let emit buf_prefix value =
      if not (f (Buffer.contents buf_prefix) value) then raise Stop
    in
    let bound = match start with Some "" | None -> None | s -> s in
    try visit_container trie trie.root prefix bound emit with Stop -> ()
  end
