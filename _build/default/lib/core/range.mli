(** Ordered range queries with a callback (paper Section 3.1, Operations):
    the callback is invoked for every stored key greater than or equal to
    the given start key, in ascending binary-comparable order, until it
    returns [false].

    The traversal is the linear pre-order container walk the paper credits
    for Hyperion's range-query performance: records are visited in the
    order they are laid out, descending into embedded containers, child
    containers and split-container slots as they appear. *)

val range :
  Types.trie -> ?start:string -> (string -> int64 option -> bool) -> unit
(** [range t ?start f] calls [f key value] for each key [>= start] (from
    the smallest key when omitted); stops early when [f] returns [false].
    [value] is [None] for keys stored without a value. *)
