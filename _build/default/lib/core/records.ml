let read_u16 buf pos = Bytes.get_uint8 buf pos lor (Bytes.get_uint8 buf (pos + 1) lsl 8)

let write_u16 buf pos v =
  if v < 0 || v > 0xffff then invalid_arg "Records.write_u16: out of range";
  Bytes.set_uint8 buf pos (v land 0xff);
  Bytes.set_uint8 buf (pos + 1) ((v lsr 8) land 0xff)

let read_value buf pos = Bytes.get_int64_le buf pos
let write_value buf pos v = Bytes.set_int64_le buf pos v

type tnode = {
  t_pos : int;
  t_flag : int;
  t_key : int;
  t_head_end : int;
  t_value_pos : int;
  t_js_pos : int;
  t_jt_pos : int;
}

type snode = {
  s_pos : int;
  s_flag : int;
  s_key : int;
  s_head_end : int;
  s_value_pos : int;
  s_end : int;
}

let decode_key buf pos flag ~prev_key ~known =
  let delta = Node.delta_of_flag flag in
  match known with
  | Some k -> (k, if delta = 0 then pos + 2 else pos + 1)
  | None ->
      if delta = 0 then (Bytes.get_uint8 buf (pos + 1), pos + 2)
      else begin
        if prev_key < 0 then
          invalid_arg "Records: delta-encoded record without predecessor";
        (prev_key + delta, pos + 1)
      end

let parse_t_gen buf pos ~prev_key ~known =
  let flag = Bytes.get_uint8 buf pos in
  assert (not (Node.is_snode flag));
  let key, after_key = decode_key buf pos flag ~prev_key ~known in
  let js_pos, after_js =
    if Node.has_js flag then (after_key, after_key + Node.js_size)
    else (-1, after_key)
  in
  let jt_pos, after_jt =
    if Node.has_jt flag then (after_js, after_js + Node.jt_size)
    else (-1, after_js)
  in
  let value_pos, head_end =
    if Node.typ_of_flag flag = Node.Leaf_value then
      (after_jt, after_jt + Node.value_size)
    else (-1, after_jt)
  in
  {
    t_pos = pos;
    t_flag = flag;
    t_key = key;
    t_head_end = head_end;
    t_value_pos = value_pos;
    t_js_pos = js_pos;
    t_jt_pos = jt_pos;
  }

let parse_t buf pos ~prev_key = parse_t_gen buf pos ~prev_key ~known:None
let parse_t_known buf pos ~key = parse_t_gen buf pos ~prev_key:(-1) ~known:(Some key)

type pc = {
  pc_pos : int;
  pc_header : int;
  pc_value_pos : int;
  pc_suffix_pos : int;
  pc_suffix_len : int;
  pc_end : int;
}

let parse_pc buf pos =
  let header = Bytes.get_uint8 buf pos in
  let len = Node.pc_len header in
  let value_pos, suffix_pos =
    if Node.pc_has_value header then (pos + 1, pos + 1 + Node.value_size)
    else (-1, pos + 1)
  in
  {
    pc_pos = pos;
    pc_header = header;
    pc_value_pos = value_pos;
    pc_suffix_pos = suffix_pos;
    pc_suffix_len = len;
    pc_end = suffix_pos + len;
  }

let child_body_size buf pos flag =
  match Node.child_of_flag flag with
  | Node.No_child -> 0
  | Node.Child_hp -> Hp.byte_size
  | Node.Child_embedded -> Layout.emb_total_size buf pos
  | Node.Child_pc -> Node.pc_body_size (Bytes.get_uint8 buf pos)

let parse_s_gen buf pos ~prev_key ~known =
  let flag = Bytes.get_uint8 buf pos in
  assert (Node.is_snode flag);
  let key, after_key = decode_key buf pos flag ~prev_key ~known in
  let value_pos, head_end =
    if Node.typ_of_flag flag = Node.Leaf_value then
      (after_key, after_key + Node.value_size)
    else (-1, after_key)
  in
  {
    s_pos = pos;
    s_flag = flag;
    s_key = key;
    s_head_end = head_end;
    s_value_pos = value_pos;
    s_end = head_end + child_body_size buf head_end flag;
  }

let parse_s buf pos ~prev_key = parse_s_gen buf pos ~prev_key ~known:None
let parse_s_known buf pos ~key = parse_s_gen buf pos ~prev_key:(-1) ~known:(Some key)

let s_record_size buf pos =
  let flag = Bytes.get_uint8 buf pos in
  let head = Node.s_head_size flag in
  head + child_body_size buf (pos + head) flag

let next_t_pos buf t ~limit =
  if t.t_js_pos >= 0 then
    let off = read_u16 buf t.t_js_pos in
    min limit (t.t_pos + off)
  else begin
    let pos = ref t.t_head_end in
    let continue = ref true in
    while !continue do
      if !pos >= limit then continue := false
      else
        let flag = Bytes.get_uint8 buf !pos in
        if flag = 0 || not (Node.is_snode flag) then continue := false
        else pos := !pos + s_record_size buf !pos
    done;
    !pos
  end

let jt_entry buf jt_pos i =
  let p = jt_pos + (3 * i) in
  (Bytes.get_uint8 buf p, read_u16 buf (p + 1))

let jt_set_entry buf jt_pos i ~key ~off =
  let p = jt_pos + (3 * i) in
  Bytes.set_uint8 buf p key;
  write_u16 buf (p + 1) off
