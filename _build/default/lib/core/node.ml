type typ = Invalid | Inner | Leaf_no_value | Leaf_value
type child = No_child | Child_hp | Child_embedded | Child_pc

let typ_code = function
  | Invalid -> 0
  | Inner -> 1
  | Leaf_no_value -> 2
  | Leaf_value -> 3

let typ_of_code = function
  | 0 -> Invalid
  | 1 -> Inner
  | 2 -> Leaf_no_value
  | 3 -> Leaf_value
  | _ -> invalid_arg "Node.typ_of_code"

let child_code = function
  | No_child -> 0
  | Child_hp -> 1
  | Child_embedded -> 2
  | Child_pc -> 3

let child_of_code = function
  | 0 -> No_child
  | 1 -> Child_hp
  | 2 -> Child_embedded
  | 3 -> Child_pc
  | _ -> invalid_arg "Node.child_of_code"

let typ_of_flag flag = typ_of_code (flag land 0b11)
let is_snode flag = flag land 0b100 <> 0
let delta_of_flag flag = (flag lsr 3) land 0b111
let has_js flag = flag land 0x40 <> 0
let has_jt flag = flag land 0x80 <> 0
let child_of_flag flag = child_of_code ((flag lsr 6) land 0b11)

let check_delta delta =
  if delta < 0 || delta > 7 then invalid_arg "Node: delta out of [0,7]"

let t_flag ~typ ~delta ~js ~jt =
  check_delta delta;
  typ_code typ lor (delta lsl 3) lor (if js then 0x40 else 0)
  lor if jt then 0x80 else 0

let s_flag ~typ ~delta ~child =
  check_delta delta;
  typ_code typ lor 0b100 lor (delta lsl 3) lor (child_code child lsl 6)

let with_typ flag typ = flag land lnot 0b11 lor typ_code typ
let with_child flag child = flag land lnot 0xc0 lor (child_code child lsl 6)
let with_js flag js = if js then flag lor 0x40 else flag land lnot 0x40
let with_jt flag jt = if jt then flag lor 0x80 else flag land lnot 0x80

let with_delta flag delta =
  check_delta delta;
  flag land lnot 0b111000 lor (delta lsl 3)

let value_size = 8
let js_size = 2
let jt_entries = 15
let jt_size = jt_entries * 3

let t_head_size flag =
  1
  + (if delta_of_flag flag = 0 then 1 else 0)
  + (if has_js flag then js_size else 0)
  + (if has_jt flag then jt_size else 0)
  + if typ_of_flag flag = Leaf_value then value_size else 0

let s_head_size flag =
  1
  + (if delta_of_flag flag = 0 then 1 else 0)
  + if typ_of_flag flag = Leaf_value then value_size else 0

let pc_header ~len ~has_value =
  if len < 1 || len > 127 then invalid_arg "Node.pc_header: len out of [1,127]";
  len lor if has_value then 0x80 else 0

let pc_len header = header land 0x7f
let pc_has_value header = header land 0x80 <> 0

let pc_body_size header =
  1 + (if pc_has_value header then value_size else 0) + pc_len header
