(** Optional key pre-processing (paper Section 3.4, Figure 12).

    For uniformly distributed keys (random integers, hashes), eight zero
    bits are injected into the first four key bytes — two into the low bits
    of each of the four bytes following the first output byte — reducing
    the entropy of the leading bytes so that fewer, larger third-level
    containers emerge (2^26 instead of 2^32).  The transformation is
    injective, invertible and preserves binary-comparable order; the key
    grows by exactly one byte.

    Only valid when every key is at least 4 bytes long (the paper evaluates
    it on 8-byte integers). *)

val encode : string -> string
(** @raise Invalid_argument when the key is shorter than 4 bytes. *)

val decode : string -> string
(** Inverse of {!encode}.  @raise Invalid_argument on strings that are not
    in the image of {!encode}. *)
