(** Shared engine types: a trie handle, an open container and a scan
    region.  Internal to the library (re-exported selectively through
    {!Store}). *)

type trie = {
  cfg : Config.t;
  mm : Memman.t;
  mutable root : Hp.t;  (** null while the trie is empty *)
}

(** Where the HP of the currently open container is stored, so that it can
    be re-written when a reallocation moves the container to a different
    chunk class. *)
type where =
  | W_root  (** the trie's root field *)
  | W_parent of Bytes.t * int
      (** absolute position of the 5-byte HP inside the parent container;
          valid as long as the parent is not itself spliced *)
  | W_slot  (** the container is a CEB slot: its CEB HP never changes *)

(** An open (resolved) container.  [buf]/[base] are invalidated by any
    splice or reallocation and must be re-derived afterwards. *)
type cbox = {
  trie : trie;
  mutable hp : Hp.t;  (** plain container HP, or the CEB HP when [slot >= 0] *)
  slot : int;  (** CEB slot index, -1 for plain containers *)
  where : where;
  mutable buf : Bytes.t;
  mutable base : int;
}

(** A scan region: either the payload of the open container itself or an
    embedded container nested in it.  Bounds are absolute buffer offsets. *)
type region = {
  rb : int;  (** first record byte *)
  re : int;  (** one past the last record byte *)
  top : bool;  (** top-level payload (owns header and jump tables) *)
}

(** Enclosing embedded containers of the current region, outermost first:
    [(s_pos, emb_pos)] — the owning S-node's record start (to rewrite its
    child flag on ejection) and the embedded header byte position. *)
type emb_chain = (int * int) list

let top_region buf base =
  {
    rb = base + Layout.payload_start buf base;
    re = base + Layout.content_end buf base;
    top = true;
  }

let emb_region buf emb_pos =
  {
    rb = emb_pos + Layout.emb_header_size;
    re = emb_pos + Layout.emb_total_size buf emb_pos;
    top = false;
  }

(* Raised whenever a structural change (ejection, split, PC burst)
   invalidates the positions held by an in-flight operation; the operation
   re-navigates from the root. *)
exception Restart
