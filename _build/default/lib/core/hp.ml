type t = int

(* Bit layout, least significant first: chunk(12) bin(8) metabin(14)
   superbin(6) — 40 bits total (Figure 9). *)
let chunk_bits = 12
let bin_bits = 8
let metabin_bits = 14
let superbin_bits = 6
let bin_shift = chunk_bits
let metabin_shift = bin_shift + bin_bits
let superbin_shift = metabin_shift + metabin_bits

let null = 0
let is_null hp = hp = 0

let make ~superbin ~metabin ~bin ~chunk =
  let check v bits name =
    if v < 0 || v >= 1 lsl bits then
      invalid_arg (Printf.sprintf "Hp.make: %s=%d out of %d-bit range" name v bits)
  in
  check superbin superbin_bits "superbin";
  check metabin metabin_bits "metabin";
  check bin bin_bits "bin";
  check chunk chunk_bits "chunk";
  (superbin lsl superbin_shift)
  lor (metabin lsl metabin_shift)
  lor (bin lsl bin_shift)
  lor chunk

let superbin hp = (hp lsr superbin_shift) land ((1 lsl superbin_bits) - 1)
let metabin hp = (hp lsr metabin_shift) land ((1 lsl metabin_bits) - 1)
let bin hp = (hp lsr bin_shift) land ((1 lsl bin_bits) - 1)
let chunk hp = hp land ((1 lsl chunk_bits) - 1)

let byte_size = 5

let write buf off hp =
  Bytes.set_uint8 buf off (hp land 0xff);
  Bytes.set_uint8 buf (off + 1) ((hp lsr 8) land 0xff);
  Bytes.set_uint8 buf (off + 2) ((hp lsr 16) land 0xff);
  Bytes.set_uint8 buf (off + 3) ((hp lsr 24) land 0xff);
  Bytes.set_uint8 buf (off + 4) ((hp lsr 32) land 0xff)

let read buf off =
  Bytes.get_uint8 buf off
  lor (Bytes.get_uint8 buf (off + 1) lsl 8)
  lor (Bytes.get_uint8 buf (off + 2) lsl 16)
  lor (Bytes.get_uint8 buf (off + 3) lsl 24)
  lor (Bytes.get_uint8 buf (off + 4) lsl 32)

let pp fmt hp =
  Format.fprintf fmt "%d.%d.%d.%d" (superbin hp) (metabin hp) (bin hp)
    (chunk hp)
