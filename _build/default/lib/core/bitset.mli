(** Fixed-size bit sets used by the memory manager's bins and metabins to
    distinguish used from free chunks (paper Section 3.2: "Bins use a 4,096
    bit array to distinguish used from free chunks").

    The paper scans these bitmaps with SIMD instructions; here a word-wise
    scan provides the same behaviour (see DESIGN.md substitutions). *)

type t

val create : int -> t
(** [create n] is a set over indices [0 .. n-1], all clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

val count_set : t -> int
(** Number of set bits (O(1), maintained incrementally). *)

val find_clear : t -> int option
(** Lowest clear index, if any. *)

val find_clear_run : t -> int -> int option
(** [find_clear_run t k] is the lowest index starting a run of [k]
    consecutive clear bits, if one exists (used to place chained extended
    bins in eight consecutive chunks). *)
