(** Byte-level parsing of T-/S-node records inside a container region.

    All positions here are absolute offsets into the backing buffer; the
    engine translates to container-relative coordinates where needed.
    Record layouts are documented in {!Node}. *)

val read_u16 : Bytes.t -> int -> int
val write_u16 : Bytes.t -> int -> int -> unit
val read_value : Bytes.t -> int -> int64
val write_value : Bytes.t -> int -> int64 -> unit

type tnode = {
  t_pos : int;  (** record start *)
  t_flag : int;
  t_key : int;  (** decoded key byte *)
  t_head_end : int;  (** first byte after the head = first S-child or next record *)
  t_value_pos : int;  (** -1 when the node carries no value *)
  t_js_pos : int;  (** position of the u16 jump-successor offset, -1 if absent *)
  t_jt_pos : int;  (** position of the 15-entry jump table, -1 if absent *)
}

type snode = {
  s_pos : int;
  s_flag : int;
  s_key : int;
  s_head_end : int;  (** start of the child body *)
  s_value_pos : int;  (** -1 when the node carries no value *)
  s_end : int;  (** first byte after the whole record including child body *)
}

val parse_t : Bytes.t -> int -> prev_key:int -> tnode
(** [parse_t buf pos ~prev_key] decodes the T-node record at [pos];
    [prev_key] is the preceding T-sibling's key (any negative value when
    there is none) used to resolve delta encoding. *)

val parse_t_known : Bytes.t -> int -> key:int -> tnode
(** Like {!parse_t} when the key is already known (after a jump-table
    jump), ignoring the record's delta field. *)

val parse_s : Bytes.t -> int -> prev_key:int -> snode
val parse_s_known : Bytes.t -> int -> key:int -> snode

val s_record_size : Bytes.t -> int -> int
(** Total bytes of the S-node record at [pos], including its child body
    (HP / embedded container / path-compressed node). *)

val next_t_pos : Bytes.t -> tnode -> limit:int -> int
(** Position of the T-node record following [t] (via its jump successor
    when present, otherwise by walking its S-children); at most [limit]
    (the region's content end). *)

val jt_entry : Bytes.t -> int -> int -> int * int
(** [jt_entry buf jt_pos i] is T-node jump-table entry [i] as
    [(key, offset)] with [offset] relative to the T-record start; offset 0
    means unused. *)

val jt_set_entry : Bytes.t -> int -> int -> key:int -> off:int -> unit

(** {1 Path-compressed child bodies} *)

type pc = {
  pc_pos : int;
  pc_header : int;
  pc_value_pos : int;  (** -1 when no value attached *)
  pc_suffix_pos : int;
  pc_suffix_len : int;
  pc_end : int;
}

val parse_pc : Bytes.t -> int -> pc
